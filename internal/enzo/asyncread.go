// Read-ahead restart pipeline (Config.AsyncIO): restart reads are issued
// through the nonblocking/split-collective MPI-IO read interfaces and
// settled just before their buffers are consumed, so the next batch's
// device time drains underneath the current batch's decompression, scatter
// and redistribution work. Restart state is bit-identical to the blocking
// path — deferral changes only who waits for the devices.
package enzo

import (
	"repro/internal/hdf5"
	"repro/internal/mpi"
	"repro/internal/mpiio"
)

// asyncReads reports whether this restart uses the read-ahead pipeline.
// HDF4 stays the synchronous baseline; tolerant read-backs and runs with
// the retry policy armed stay blocking too — deferred reads carry no
// deadline, so only the blocking path can turn a dead data server into a
// typed *mpiio.IOError instead of a never-completing request.
func (s *Sim) asyncReads() bool {
	return s.cfg.AsyncIO && s.backend != BackendHDF4 &&
		!s.tolerant && !s.hints.Retry.Enabled
}

// pendingRead tracks one restart's deferred reads: the split of elapsed
// device time into exposed wait and hidden overlap, plus the latest
// deferred completion as a drain backstop.
type pendingRead struct {
	exposed float64 // device wait the rank actually paid at settle points
	hidden  float64 // device time that completed under other pipeline work
	maxEnd  float64 // latest deferred completion issued by this rank
}

// readRestart runs the backend restart reader; with the read-ahead
// pipeline active it tracks every deferred read and folds the
// exposed/hidden split into the result (max across ranks, mirroring the
// write-behind accounting). It is collective — every rank calls it the
// same number of times, including during scrubs and generation fallbacks.
func (s *Sim) readRestart(d int) {
	if !s.asyncReads() {
		s.readRestartImpl(d)
		return
	}
	s.rpend = &pendingRead{maxEnd: s.r.Now()}
	s.readRestartImpl(d)
	rp := s.rpend
	s.rpend = nil
	// Drain backstop: no deferred read may outlive the restart phase, even
	// if a path skipped its settle.
	if now := s.r.Now(); rp.maxEnd > now {
		rp.exposed += rp.maxEnd - now
		s.r.Proc().AdvanceTo(rp.maxEnd)
	}
	exposedMax := s.r.AllreduceFloat64(rp.exposed, mpi.OpMax)
	hiddenMax := s.r.AllreduceFloat64(rp.hidden, mpi.OpMax)
	if s.r.Rank() == 0 {
		s.res.ExposedRead += exposedMax
		s.res.HiddenRead += hiddenMax
	}
}

// rDefer registers a deferred read issued at issueT completing at end and
// returns its settle: called just before the buffer is consumed, it splits
// the elapsed device time into exposed wait and hidden overlap and runs
// fin (whose AdvanceTo moves the clock).
func (s *Sim) rDefer(issueT, end float64, fin func()) func() {
	rp := s.rpend
	if end > rp.maxEnd {
		rp.maxEnd = end
	}
	return func() {
		wait := end - s.r.Now()
		if wait < 0 {
			wait = 0
		}
		if hid := (end - issueT) - wait; hid > 0 {
			rp.hidden += hid
		}
		rp.exposed += wait
		fin()
	}
}

// The restart readers (rawio/rawzio/hdf5io) route every data read through
// the helpers below: blocking when no restart is pending (the returned
// settle is a no-op), read-ahead while one is (the buffer is valid only
// after settle).

func (s *Sim) rReadAt(f *mpiio.File, buf []byte, off int64) func() {
	if s.rpend == nil {
		f.ReadAt(buf, off)
		return func() {}
	}
	t0 := s.r.Now()
	p := f.IreadAt(buf, off)
	return s.rDefer(t0, p.Completion(), p.Wait)
}

// rReadAtTol is rReadAt under tolerantIO: in a tolerant read-back an
// exhausted-retry failure leaves the buffer zeroed and the rank damaged
// instead of crashing the run.
func (s *Sim) rReadAtTol(f *mpiio.File, buf []byte, off int64) func() {
	settle := func() {}
	s.tolerantIO(func() { settle = s.rReadAt(f, buf, off) })
	return settle
}

func (s *Sim) rReadList(f *mpiio.File, offs, lens []int64, buf []byte) func() {
	if s.rpend == nil {
		f.ReadList(offs, lens, buf)
		return func() {}
	}
	t0 := s.r.Now()
	p := f.IreadList(offs, lens, buf)
	return s.rDefer(t0, p.Completion(), p.Wait)
}

// rReadListTol is rReadList under tolerantIO, like rReadAtTol.
func (s *Sim) rReadListTol(f *mpiio.File, offs, lens []int64, buf []byte) func() {
	settle := func() {}
	s.tolerantIO(func() { settle = s.rReadList(f, offs, lens, buf) })
	return settle
}

func (s *Sim) rReadAtAll(f *mpiio.File, runs []mpi.Run, buf []byte) func() {
	if s.rpend == nil {
		f.ReadAtAll(runs, buf)
		return func() {}
	}
	t0 := s.r.Now()
	sr := f.ReadAtAllBegin(runs, buf)
	return s.rDefer(t0, sr.Completion(), sr.End)
}

func (s *Sim) rH5Slab(ds *hdf5.Dataset, sel mpi.Subarray, buf []byte) func() {
	if s.rpend == nil {
		ds.ReadHyperslab(sel, buf)
		return func() {}
	}
	t0 := s.r.Now()
	sr := ds.ReadHyperslabBegin(sel, buf)
	return s.rDefer(t0, sr.Completion(), sr.End)
}

func (s *Sim) rH5SlabIndep(ds *hdf5.Dataset, sel mpi.Subarray, buf []byte) func() {
	if s.rpend == nil {
		ds.ReadHyperslabIndependent(sel, buf)
		return func() {}
	}
	t0 := s.r.Now()
	sr := ds.ReadHyperslabIndependentAsync(sel, buf)
	return s.rDefer(t0, sr.Completion(), sr.End)
}

// rH5SlabIndepTol is rH5SlabIndep under tolerantIO. A nil dataset (the
// container failed a tolerant open) leaves the buffer zero-filled.
func (s *Sim) rH5SlabIndepTol(ds *hdf5.Dataset, sel mpi.Subarray, buf []byte) func() {
	settle := func() {}
	if ds == nil {
		return settle
	}
	s.tolerantIO(func() { settle = s.rH5SlabIndep(ds, sel, buf) })
	return settle
}

// rH5ZRead issues a compressed-segment read (one slot, or every slot when
// slot < 0); the returned settle yields the decoded bytes, or nil when a
// tolerant read-back absorbed a failure.
func (s *Sim) rH5ZRead(ds *hdf5.Dataset, slot int) func() []byte {
	if s.rpend == nil {
		var raw []byte
		s.tolerantIO(func() {
			r, err := readCompressed(ds, slot)
			if !s.tolerate(err) {
				raw = r
			}
		})
		return func() []byte { return raw }
	}
	t0 := s.r.Now()
	var sr *hdf5.SegRead
	var err error
	if slot < 0 {
		sr, err = ds.ReadCompressedAllAsync()
	} else {
		sr, err = ds.ReadCompressedSegAsync(slot)
	}
	if err != nil {
		panic(err) // read-ahead never runs tolerant (see asyncReads)
	}
	var raw []byte
	settle := s.rDefer(t0, sr.Completion(), func() {
		r, err := sr.Wait()
		if err != nil {
			panic(err)
		}
		raw = r
	})
	return func() []byte {
		settle()
		return raw
	}
}

func readCompressed(ds *hdf5.Dataset, slot int) ([]byte, error) {
	if slot < 0 {
		return ds.ReadCompressedAll()
	}
	return ds.ReadCompressedSeg(slot)
}
