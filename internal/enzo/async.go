// Write-behind dump pipeline (Config.AsyncIO): every data write of a
// checkpoint is issued through the nonblocking/split-collective MPI-IO
// interfaces, the rank overlaps the next evolution step's compute with the
// draining devices, and the dump settles before the following one starts.
// File bytes are identical to the synchronous path — deferral changes only
// who waits for the devices, not what reaches them.
package enzo

import (
	"repro/internal/hdf5"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/obs"
)

// asyncDumps reports whether this run uses the write-behind dump pipeline.
// HDF4 stays the synchronous baseline regardless of Config.AsyncIO.
func (s *Sim) asyncDumps() bool { return s.cfg.AsyncIO && s.backend != BackendHDF4 }

// pendingDump collects the deferred pieces of one in-flight checkpoint.
type pendingDump struct {
	// drains settle the deferred operations, in issue order — the order
	// matters because split-collective Ends resynchronize the communicator
	// and every rank appends its collective operations in SPMD order.
	drains []func()
	// closers run after the drains (a file closes only once its writes
	// have settled).
	closers []func()
	// maxEnd is the latest deferred device completion issued by this rank.
	maxEnd float64
}

func (p *pendingDump) note(end float64) {
	if end > p.maxEnd {
		p.maxEnd = end
	}
}

// The dump writers (rawio/rawzio/hdf5io) route every data write and file
// close through the helpers below: blocking when no dump is pending,
// write-behind while one is.

func (s *Sim) dWriteAt(f *mpiio.File, data []byte, off int64) {
	if s.pend == nil {
		f.WriteAt(data, off)
		return
	}
	pw := f.IwriteAt(data, off)
	s.pend.note(pw.Completion())
	s.pend.drains = append(s.pend.drains, pw.Wait)
}

func (s *Sim) dWriteList(f *mpiio.File, offs, lens []int64, data []byte) {
	if s.pend == nil {
		f.WriteList(offs, lens, data)
		return
	}
	pw := f.IwriteList(offs, lens, data)
	s.pend.note(pw.Completion())
	s.pend.drains = append(s.pend.drains, pw.Wait)
}

func (s *Sim) dWriteAtAll(f *mpiio.File, runs []mpi.Run, data []byte) {
	if s.pend == nil {
		f.WriteAtAll(runs, data)
		return
	}
	sw := f.WriteAtAllBegin(runs, data)
	s.pend.note(sw.Completion())
	s.pend.drains = append(s.pend.drains, sw.End)
}

func (s *Sim) dClose(f *mpiio.File) {
	if s.pend == nil {
		f.Close()
		return
	}
	s.pend.closers = append(s.pend.closers, f.Close)
}

func (s *Sim) dH5Slab(ds *hdf5.Dataset, sel mpi.Subarray, data []byte) {
	if s.pend == nil {
		ds.WriteHyperslab(sel, data)
		return
	}
	sw := ds.WriteHyperslabBegin(sel, data)
	s.pend.note(sw.Completion())
	s.pend.drains = append(s.pend.drains, sw.End)
}

func (s *Sim) dH5SlabIndep(ds *hdf5.Dataset, sel mpi.Subarray, data []byte) {
	if s.pend == nil {
		ds.WriteHyperslabIndependent(sel, data)
		return
	}
	pw := ds.WriteHyperslabIndependentAsync(sel, data)
	s.pend.note(pw.Completion())
	s.pend.drains = append(s.pend.drains, pw.Wait)
}

// dH5Open switches a freshly created dump container into write-behind
// metadata mode when a dump is pending (the library's metadata cache:
// header flushes defer like data writes).
func (s *Sim) dH5Open(hf *hdf5.File) {
	if s.pend != nil {
		hf.SetWriteBehindMeta(s.pend.note)
	}
}

func (s *Sim) dH5Close(hf *hdf5.File) {
	if s.pend == nil {
		hf.Close()
		return
	}
	s.pend.closers = append(s.pend.closers, func() {
		// The drain already settled every deferred completion; the close's
		// own superblock write goes back to synchronous.
		hf.SetWriteBehindMeta(nil)
		hf.Close()
	})
}

func (s *Sim) dH5Z(ds *hdf5.Dataset, raw []byte) {
	if s.pend == nil {
		ds.WriteCompressed(s.codec, raw)
		return
	}
	pw := ds.WriteCompressedAsync(s.codec, raw)
	s.pend.note(pw.Completion())
	s.pend.drains = append(s.pend.drains, pw.Wait)
}

// localCells returns the cells this rank evolves per cycle — the same
// count the evolve phase computes on, reused for the overlapped step.
func (s *Sim) localCells() int64 {
	var cells int64
	if s.top != nil {
		cells += s.top.sub.NumElems()
	}
	for _, g := range s.owned {
		cells += g.Cells()
	}
	return cells
}

// writeDumpAsync is the double-buffered write-behind checkpoint: issue the
// dump's writes deferred, run the next evolution step's compute while the
// devices drain, then settle. Per dump it accumulates into the result how
// much dump wall-time stayed exposed (issue + drain) versus how much device
// time hid under the compute.
func (s *Sim) writeDumpAsync(d int) {
	t0 := s.r.Now()
	s.pend = &pendingDump{maxEnd: t0}
	issue := obs.Begin(s.r.Proc(), obs.LayerApp, "dump_issue")
	s.writeDump(d)
	issue.End()
	pend := s.pend
	s.pend = nil
	t1 := s.r.Now()

	ov := obs.Begin(s.r.Proc(), obs.LayerApp, "dump_overlap_compute")
	s.r.Compute(s.localCells() * s.cfg.FlopsPerCell)
	ov.End()
	t2 := s.r.Now()

	dr := obs.Begin(s.r.Proc(), obs.LayerApp, "dump_drain")
	for _, fn := range pend.drains {
		fn()
	}
	s.r.Proc().AdvanceTo(pend.maxEnd)
	for _, fn := range pend.closers {
		fn()
	}
	dr.End()
	t3 := s.r.Now()

	// Exposed: what the rank actually waited on I/O. Hidden: device time
	// past issue, capped by the compute window it hid under.
	exposed := (t1 - t0) + (t3 - t2)
	hidden := pend.maxEnd - t1
	if c := t2 - t1; hidden > c {
		hidden = c
	}
	if hidden < 0 {
		hidden = 0
	}
	exposedMax := s.r.AllreduceFloat64(exposed, mpi.OpMax)
	hiddenMax := s.r.AllreduceFloat64(hidden, mpi.OpMax)
	if s.r.Rank() == 0 {
		s.res.ExposedWrite += exposedMax
		s.res.HiddenWrite += hiddenMax
	}
}
