package enzo

import (
	"fmt"
	"testing"

	"repro/internal/compress"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TestCompressedRunsVerifyEverywhere: the transparent-compression truth
// test. Every compressing backend, on every file-system kind, with every
// registered codec, must round-trip the full write/restart cycle with the
// decompressed state byte-identical to the pre-dump state (Verified uses
// FNV content hashes of every field array and particle set).
func TestCompressedRunsVerifyEverywhere(t *testing.T) {
	for _, backend := range []Backend{BackendMPIIO, BackendMPIIOCB, BackendHDF5} {
		for _, fsKind := range []string{"xfs", "gpfs", "pvfs", "local"} {
			for _, codec := range compress.Names() {
				if !compress.Active(codec) {
					continue
				}
				backend, fsKind, codec := backend, fsKind, codec
				t.Run(fmt.Sprintf("%s-%s-%s", backend, fsKind, codec), func(t *testing.T) {
					cfg := tinyCfg()
					cfg.Codec = codec
					res, err := RunOnce(testMachineCfg(), fsKind, 4, cfg, backend)
					if err != nil {
						t.Fatal(err)
					}
					if !res.Verified {
						t.Fatal("compressed restart state did not match pre-dump state")
					}
					if res.Codec != codec {
						t.Fatalf("result codec %q, want %q", res.Codec, codec)
					}
				})
			}
		}
	}
}

// TestCompressedContentMatchesUncompressed proves the compressed dump
// decodes to exactly the logical data an uncompressed run produces: the
// decomposition-independent content hash of the restart-read state must be
// identical between a codec run and a codec-less run of the same problem.
func TestCompressedContentMatchesUncompressed(t *testing.T) {
	hashAfterRestart := func(backend Backend, codec string) ContentHash {
		eng := sim.NewEngine()
		mach := machine.New(testMachineCfg())
		fs, err := MakeFS("xfs", mach)
		if err != nil {
			t.Fatal(err)
		}
		cfg := tinyCfg()
		cfg.Codec = codec
		res := &Result{}
		var h ContentHash
		mpi.NewWorld(eng, mach, 4, func(r *mpi.Rank) {
			s := NewSim(r, fs, backend, cfg, res)
			s.setup()
			s.readInitial()
			s.evolve()
			s.writeDump(0)
			s.clearState()
			s.readRestart(0)
			if hh := s.contentHash(); r.Rank() == 0 {
				h = hh
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return h
	}
	for _, backend := range []Backend{BackendMPIIO, BackendMPIIOCB, BackendHDF5} {
		backend := backend
		t.Run(backend.String(), func(t *testing.T) {
			plain := hashAfterRestart(backend, "none")
			for _, codec := range []string{"rle", "delta", "lzss"} {
				if got := hashAfterRestart(backend, codec); !got.Equal(plain) {
					t.Fatalf("%s: restart content differs from uncompressed run", codec)
				}
			}
		})
	}
}

// TestCompressedRunsShrinkPhysicalWrites: the smooth baryon fields must
// actually compress — a codec run's physical write volume has to come in
// clearly under the uncompressed run's.
func TestCompressedRunsShrinkPhysicalWrites(t *testing.T) {
	base, err := RunOnce(testMachineCfg(), "xfs", 4, tinyCfg(), BackendMPIIO)
	if err != nil {
		t.Fatal(err)
	}
	for _, codec := range []string{"delta", "lzss"} {
		cfg := tinyCfg()
		cfg.Codec = codec
		res, err := RunOnce(testMachineCfg(), "xfs", 4, cfg, BackendMPIIO)
		if err != nil {
			t.Fatal(err)
		}
		if res.BytesWritten >= base.BytesWritten*3/4 {
			t.Fatalf("%s: wrote %d bytes, uncompressed run wrote %d — no real compression",
				codec, res.BytesWritten, base.BytesWritten)
		}
	}
}

// TestCompressedTracedMatchesUntraced extends the zero-perturbation
// guarantee to the codec cost model: tracing a compressed run must not
// move the clock.
func TestCompressedTracedMatchesUntraced(t *testing.T) {
	for _, backend := range []Backend{BackendMPIIO, BackendHDF5} {
		backend := backend
		t.Run(backend.String(), func(t *testing.T) {
			cfg := tinyCfg()
			cfg.Codec = "lzss"
			plain, err := RunOnce(testMachineCfg(), "pvfs", 4, cfg, backend)
			if err != nil {
				t.Fatal(err)
			}
			tr := obs.NewTracer()
			traced, err := RunOnceTraced(testMachineCfg(), "pvfs", 4, cfg, backend, tr)
			if err != nil {
				t.Fatal(err)
			}
			if plain.Makespan != traced.Makespan {
				t.Fatalf("tracing moved the clock: %.9f vs %.9f", plain.Makespan, traced.Makespan)
			}
			stats := tr.CodecStats()
			if len(stats) == 0 {
				t.Fatal("traced compressed run recorded no codec counters")
			}
			var logical, physical int64
			for _, cs := range stats {
				logical += cs.CompressLogical
				physical += cs.CompressStored
			}
			if logical <= physical || physical <= 0 {
				t.Fatalf("codec counters implausible: logical=%d physical=%d", logical, physical)
			}
		})
	}
}

// TestCodecCostModelChargesTime: a slower codec CPU must yield a longer
// makespan, and an effectively infinite one must cost (almost) nothing
// relative to it.
func TestCodecCostModelChargesTime(t *testing.T) {
	run := func(bps float64) float64 {
		cfg := tinyCfg()
		cfg.Codec = "lzss"
		cfg.CompressBps = bps
		cfg.DecompressBps = bps
		res, err := RunOnce(testMachineCfg(), "xfs", 4, cfg, BackendMPIIO)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	slow, fast := run(1e6), run(1e12)
	if slow <= fast {
		t.Fatalf("slow codec CPU (%.4fs) should beat fast (%.4fs) on makespan", slow, fast)
	}
}

// TestUnknownCodecRejected: config validation must name the known codecs.
func TestUnknownCodecRejected(t *testing.T) {
	cfg := tinyCfg()
	cfg.Codec = "zstd"
	if _, err := RunOnce(testMachineCfg(), "xfs", 4, cfg, BackendMPIIO); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

// TestHDF4IgnoresCodec: the HDF4 baseline stays uncompressed even when a
// codec is configured, and still verifies.
func TestHDF4IgnoresCodec(t *testing.T) {
	cfg := tinyCfg()
	cfg.Codec = "lzss"
	res, err := RunOnce(testMachineCfg(), "xfs", 4, cfg, BackendHDF4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("hdf4 run with codec configured failed verification")
	}
	base, err := RunOnce(testMachineCfg(), "xfs", 4, tinyCfg(), BackendHDF4)
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesWritten != base.BytesWritten {
		t.Fatalf("hdf4 byte volume changed with codec set: %d vs %d", res.BytesWritten, base.BytesWritten)
	}
}
