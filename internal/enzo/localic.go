package enzo

import (
	"repro/internal/amr"
	"repro/internal/core"
	"repro/internal/hdf5"
	"repro/internal/mpi"
	"repro/internal/mpiio"
)

// Node-local disk mode (the paper's fourth experiment) has no shared
// namespace: a rank can only read back bytes its own node wrote. Initial
// conditions are therefore *provisioned* at setup time — rank 0 scatters
// each grid's partitions and every rank stores its own partition on its
// local disk — exactly how a local-disk cluster run would be staged. The
// timed initial read then reads each rank's partition independently.

// scatterGridFromRoot distributes grid gm from the rank-0 hierarchy:
// every rank receives its (Block,Block,Block) field blocks and its
// position-owned particle rows.
func (s *Sim) scatterGridFromRoot(h *amr.Hierarchy, gm core.GridMeta) (fields [][]byte, rows []byte) {
	fields = make([][]byte, len(amr.FieldNames))
	for fi := range amr.FieldNames {
		var parts [][]byte
		if s.r.Rank() == 0 {
			full := h.Grids[gm.ID].Fields[fi]
			parts = make([][]byte, s.r.Size())
			for rank := 0; rank < s.r.Size(); rank++ {
				parts[rank] = core.FieldSubarray(gm, s.pz, s.py, s.px, rank).GatherSub(full)
			}
		}
		fields[fi] = s.r.Scatterv(0, parts)
	}
	if gm.NParticles == 0 {
		return fields, nil
	}
	var rowParts [][]byte
	if s.r.Rank() == 0 {
		all := packRows(&h.Grids[gm.ID].Particles)
		rs := rowSize()
		rowParts = make([][]byte, s.r.Size())
		for i := 0; i+rs <= len(all); i += rs {
			row := all[i : i+rs]
			o := core.OwnerOfPosition(rowPosition(row), gm, s.pz, s.py, s.px)
			rowParts[o] = append(rowParts[o], row...)
		}
	}
	rows = s.r.Scatterv(0, rowParts)
	return fields, rows
}

// rawProvisionLocalIC stages the MPI-IO initial conditions across the
// local disks and records each rank's particle row range per grid.
func (s *Sim) rawProvisionLocalIC(h *amr.Hierarchy) {
	f, err := mpiio.Open(s.r, s.fs, icRawFile(), mpiio.ModeCreate, s.hints)
	if err != nil {
		panic(err)
	}
	s.localICRows = make(map[int][2]int64)
	for _, gm := range s.meta.Grids {
		fields, rows := s.scatterGridFromRoot(h, gm)
		sub := core.FieldSubarray(gm, s.pz, s.py, s.px, s.r.Rank())
		for fi, name := range amr.FieldNames {
			f.WriteRuns(s.fieldRuns(gm, name, sub), fields[fi])
		}
		if gm.NParticles == 0 {
			continue
		}
		myCount := int64(len(rows) / rowSize())
		rowOff := s.r.ExscanInt64(myCount)
		cols := columnsFromRows(rows)
		for k, pa := range amr.ParticleArrays {
			base, _ := s.layout.ArrayOffset(gm.ID, pa.Name)
			f.WriteAt(cols[k], base+rowOff*int64(pa.ElemSize))
		}
		s.localICRows[gm.ID] = [2]int64{rowOff, rowOff + myCount}
	}
	f.Close()
}

// h5ProvisionLocalIC stages the HDF5 initial conditions the same way,
// through independent hyperslab writes.
func (s *Sim) h5ProvisionLocalIC(h *amr.Hierarchy) {
	hf, err := hdf5.Create(s.r, s.fs, icH5File(), s.h5cfg(icH5File()), s.hints)
	if err != nil {
		panic(err)
	}
	s.localICRows = make(map[int][2]int64)
	for _, gm := range s.meta.Grids {
		fields, rows := s.scatterGridFromRoot(h, gm)
		sub := s.fieldSel(gm)
		dims3 := []int{gm.Dims[0], gm.Dims[1], gm.Dims[2]}
		for fi, name := range amr.FieldNames {
			if s.compressed() {
				ds, err := hf.CreateDatasetZ(dsName(gm.ID, name), dims3, amr.FieldElemSize, s.codec)
				if err != nil {
					panic(err)
				}
				ds.WriteCompressed(s.codec, fields[fi])
				ds.Close()
				continue
			}
			ds, err := hf.CreateDataset(dsName(gm.ID, name), dims3, amr.FieldElemSize)
			if err != nil {
				panic(err)
			}
			ds.WriteHyperslabIndependent(sub, fields[fi])
			ds.Close()
		}
		if gm.NParticles == 0 {
			continue
		}
		myCount := int64(len(rows) / rowSize())
		rowOff := s.r.ExscanInt64(myCount)
		cols := columnsFromRows(rows)
		for k, pa := range amr.ParticleArrays {
			ds, err := hf.CreateDataset(dsName(gm.ID, pa.Name), []int{int(gm.NParticles)}, pa.ElemSize)
			if err != nil {
				panic(err)
			}
			ds.WriteHyperslabIndependent(rowRangeSel(gm.NParticles, pa.ElemSize, rowOff, rowOff+myCount), cols[k])
			ds.Close()
		}
		s.localICRows[gm.ID] = [2]int64{rowOff, rowOff + myCount}
	}
	hf.Close()
}

// rowRangeSel builds a 1-D hyperslab over rows [lo, hi) of an n-row
// particle array.
func rowRangeSel(n int64, elemSize int, lo, hi int64) mpi.Subarray {
	return mpi.Subarray{
		Sizes:    []int{int(n)},
		Subsizes: []int{int(hi - lo)},
		Starts:   []int{int(lo)},
		ElemSize: elemSize,
	}
}
