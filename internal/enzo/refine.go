package enzo

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/amr"
	"repro/internal/core"
)

// Dynamic refinement: per the paper's simulation flow (Figure 2), the
// grid hierarchy deepens during the evolution between dumps — "the
// subgrids can be refined and redistributed among processors". With
// Config.RefineCycles > 0, every evolve step flags and refines the owned
// grids of the deepest level, assigns globally consistent IDs to the new
// children, and exchanges the updated hierarchy metadata so every rank can
// still compute the shared-file layout without communication at dump
// time. Each dump then records its own ".hierarchy" file, which a restart
// (possibly on a different processor count) loads.

// refineOwned performs one refinement pass over this rank's owned grids at
// the current deepest level. Collective: all ranks must call it together.
func (s *Sim) refineOwned() int {
	maxLevel := 0
	for _, g := range s.meta.Grids {
		if g.Level > maxLevel {
			maxLevel = g.Level
		}
	}
	threshold := s.cfg.Threshold * math.Pow(1.8, float64(maxLevel))

	// Refine deterministically in grid-ID order.
	ids := make([]int, 0, len(s.owned))
	for id := range s.owned {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var children []*amr.Grid
	var updatedParents []core.GridMeta
	for _, id := range ids {
		g := s.owned[id]
		if g.Level != maxLevel {
			continue
		}
		flags := amr.FlagCells(g, threshold)
		for _, box := range amr.ClusterFlags(g, flags, 8) {
			child := amr.Prolong(g, box) // moves particles into the child
			child.Parent = g.ID
			children = append(children, child)
		}
		// Prolong may have moved particles out of the parent.
		updatedParents = append(updatedParents, core.GridMeta{
			ID: g.ID, Level: g.Level, Parent: g.Parent, Dims: g.Dims,
			NParticles: int64(g.Particles.N),
			LeftEdge:   g.LeftEdge, RightEdge: g.RightEdge,
		})
	}
	// The evolution work of flagging/interpolating.
	var work int64
	for _, c := range children {
		work += c.Cells()
	}
	s.r.Compute(work * s.cfg.FlopsPerCell)

	// Assign globally consistent IDs: counts exchanged, each rank's new
	// grids get a contiguous block in rank order.
	counts := s.r.AllgatherInt64(int64(len(children)))
	base := len(s.meta.Grids)
	for rank := 0; rank < s.r.Rank(); rank++ {
		base += int(counts[rank])
	}
	newMetas := make([]core.GridMeta, 0, len(children))
	for i, c := range children {
		c.ID = base + i
		c.Level = maxLevel + 1
		s.owned[c.ID] = c
		newMetas = append(newMetas, core.GridMeta{
			ID: c.ID, Level: c.Level, Parent: c.Parent, Dims: c.Dims,
			NParticles: int64(c.Particles.N),
			LeftEdge:   c.LeftEdge, RightEdge: c.RightEdge,
		})
	}

	// Exchange the hierarchy update (the replicated metadata stays
	// replicated): every rank learns all new grids and all parent
	// particle-count changes.
	payload := struct {
		New     []core.GridMeta
		Parents []core.GridMeta
	}{newMetas, updatedParents}
	enc, err := json.Marshal(payload)
	if err != nil {
		panic(err)
	}
	var total int
	allNew := make([]core.GridMeta, 0)
	for _, chunk := range s.r.Allgatherv(enc) {
		var p struct {
			New     []core.GridMeta
			Parents []core.GridMeta
		}
		if err := json.Unmarshal(chunk, &p); err != nil {
			panic(fmt.Sprintf("enzo: corrupt refinement update: %v", err))
		}
		allNew = append(allNew, p.New...)
		for _, pm := range p.Parents {
			s.meta.Grids[pm.ID] = pm
		}
		total += len(p.New)
	}
	sort.Slice(allNew, func(i, j int) bool { return allNew[i].ID < allNew[j].ID })
	for _, m := range allNew {
		if m.ID != len(s.meta.Grids) {
			panic(fmt.Sprintf("enzo: refinement ID gap: grid %d arriving at slot %d",
				m.ID, len(s.meta.Grids)))
		}
		s.meta.Grids = append(s.meta.Grids, m)
	}
	// Extend the dump-time ownership map: rank k owns the contiguous ID
	// block its counts entry describes (children stay with their creator).
	for rank := 0; rank < s.r.Size(); rank++ {
		for k := int64(0); k < counts[rank]; k++ {
			s.dumpOwners = append(s.dumpOwners, rank)
		}
	}
	// The shared-file layout changes with the hierarchy.
	s.layout = core.NewLayout(s.meta)
	return total
}

// dumpHierarchyFile is the per-dump metadata file name.
func dumpHierarchyFile(d int) string { return fmt.Sprintf("dump%02d.hierarchy", d) }

// writeDumpHierarchy records the dump-time hierarchy metadata (rank 0),
// so restarts — including restarts on a different processor count — see
// the hierarchy as of this dump rather than the initial one.
func (s *Sim) writeDumpHierarchy(d int) {
	if s.r.Rank() == 0 {
		f, err := s.fs.Create(s.client(), dumpHierarchyFile(d))
		if err != nil {
			panic(err)
		}
		f.WriteAt(s.client(), s.meta.Encode(), 0)
		f.Close(s.client())
	}
	s.r.Barrier()
}
