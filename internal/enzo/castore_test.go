package enzo

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/obs"
	"repro/internal/pfs"
)

// TestConfigNormalize: normalize mirrors (*mpiio.Hints).normalize — every
// out-of-range knob clamps to a sane value instead of misbehaving at run
// time.
func TestConfigNormalize(t *testing.T) {
	cases := []struct {
		name     string
		in       Config
		nsrv     int
		gens     int
		redumps  int
		replicas int
	}{
		{"zero-value", Config{}, 8, 0, 0, 1},
		{"negative-generations", Config{Generations: -3}, 8, 0, 0, 1},
		{"valid-generations", Config{Generations: 2}, 8, 2, 0, 1},
		{"negative-redumps", Config{MaxRedumps: -1}, 8, 0, 0, 1},
		{"valid-redumps", Config{MaxRedumps: 5}, 8, 0, 5, 1},
		{"zero-replicas", Config{Replicas: 0}, 8, 0, 0, 1},
		{"negative-replicas", Config{Replicas: -2}, 8, 0, 0, 1},
		{"replicas-above-servers", Config{Replicas: 12}, 8, 0, 0, 8},
		{"replicas-in-range", Config{Replicas: 3}, 8, 0, 0, 3},
		{"no-data-servers", Config{Replicas: 12}, 0, 0, 0, 12},
		{"all-at-once", Config{Generations: -1, MaxRedumps: -9, Replicas: 99}, 4, 0, 0, 4},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c := tc.in
			c.normalize(tc.nsrv)
			if c.Generations != tc.gens {
				t.Errorf("Generations = %d, want %d", c.Generations, tc.gens)
			}
			if c.MaxRedumps != tc.redumps {
				t.Errorf("MaxRedumps = %d, want %d", c.MaxRedumps, tc.redumps)
			}
			if c.Replicas != tc.replicas {
				t.Errorf("Replicas = %d, want %d", c.Replicas, tc.replicas)
			}
		})
	}
}

// TestCAStoreRestartBitIdentical: every backend × file system × codec combo
// must restore bit-identical state through the content-addressed path, and
// with two dumps of unchanged state the second generation must dedup
// against the first (physical < logical, deduped > 0).
func TestCAStoreRestartBitIdentical(t *testing.T) {
	for _, backend := range []Backend{BackendMPIIO, BackendMPIIOCB, BackendHDF5} {
		for _, fsKind := range []string{"xfs", "gpfs", "pvfs", "local"} {
			for _, codec := range []string{"", "lzss"} {
				backend, fsKind, codec := backend, fsKind, codec
				t.Run(fmt.Sprintf("%v_%s_codec=%s", backend, fsKind, codec), func(t *testing.T) {
					cfg := Tiny()
					cfg.Codec = codec
					cfg.CAStore = true
					cfg.Dumps = 2
					res, err := RunOnce(faultMachCfg(), fsKind, 4, cfg, backend)
					if err != nil {
						t.Fatal(err)
					}
					if !res.Verified {
						t.Fatal("castore restart did not verify")
					}
					if res.CASChunkPuts == 0 || res.CASLogicalBytes == 0 {
						t.Fatalf("no castore traffic recorded: %+v", res)
					}
					if res.CASChunkHits == 0 || res.CASDedupedBytes == 0 {
						t.Fatalf("second dump of unchanged state did not dedup: puts=%d hits=%d deduped=%d",
							res.CASChunkPuts, res.CASChunkHits, res.CASDedupedBytes)
					}
					if res.CASPhysicalBytes >= res.CASLogicalBytes {
						t.Fatalf("physical bytes %d not below logical %d at depth 2",
							res.CASPhysicalBytes, res.CASLogicalBytes)
					}
				})
			}
		}
	}
}

// TestCAStoreComposesWithAsyncAndScrub: the castore dump path must ride the
// write-behind pipeline (deferred chunk writes settle in the drain) and the
// scrub read-back must verify generations through the store.
func TestCAStoreComposesWithAsyncAndScrub(t *testing.T) {
	for _, tc := range []struct {
		name  string
		async bool
		scrub bool
	}{
		{"async", true, false},
		{"scrub", false, true},
		{"async+scrub", true, true},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := Tiny()
			cfg.CAStore = true
			cfg.Dumps = 2
			cfg.AsyncIO = tc.async
			cfg.ScrubOnDump = tc.scrub
			res, err := RunOnce(faultMachCfg(), "pvfs", 4, cfg, BackendMPIIO)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Verified {
				t.Fatal("castore run did not verify")
			}
			if tc.async && res.HiddenWrite == 0 {
				t.Fatal("async castore dump hid no device time")
			}
			if tc.scrub && res.ScrubFailures != 0 {
				t.Fatalf("healthy castore run recorded %d scrub failures", res.ScrubFailures)
			}
			if res.CASDedupedBytes == 0 {
				t.Fatal("no dedup across generations")
			}
		})
	}
}

// TestCAStorePhysicalBelowPlain: at retention depth >= 2 the deduped store
// must move strictly fewer bytes to the devices than the plain dump path
// writing every generation in full.
func TestCAStorePhysicalBelowPlain(t *testing.T) {
	cfg := Tiny()
	cfg.Dumps = 2
	plain, err := RunOnce(faultMachCfg(), "pvfs", 4, cfg, BackendMPIIO)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CAStore = true
	cas, err := RunOnce(faultMachCfg(), "pvfs", 4, cfg, BackendMPIIO)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Verified || !cas.Verified {
		t.Fatalf("runs not verified: plain=%v cas=%v", plain.Verified, cas.Verified)
	}
	if cas.BytesWritten >= plain.BytesWritten {
		t.Fatalf("castore wrote %d bytes, plain wrote %d — dedup saved nothing",
			cas.BytesWritten, plain.BytesWritten)
	}
}

// TestCAStoreDeadServerFailsOver is the tentpole acceptance test: with
// chunks and manifests replicated on two data servers, a server that dies
// right as the restart begins must cost re-routed reads, not a generation
// fallback — the run still verifies bit-identically.
func TestCAStoreDeadServerFailsOver(t *testing.T) {
	pol := testRetryPolicy()
	cfg := Tiny()
	cfg.CAStore = true
	cfg.Replicas = 2
	cfg.IORetry = pol
	cfg.ScrubOnDump = true
	cfg.Dumps = 2
	cfg.Generations = 2

	// Healthy traced run pins the virtual time the restart phase begins
	// (runs are deterministic, so the faulty run follows the same timeline
	// up to the failure).
	tr := obs.NewTracer()
	healthy, err := RunOnceTraced(faultMachCfg(), "pvfs", 4, cfg, BackendMPIIO, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !healthy.Verified {
		t.Fatal("healthy reference run not verified")
	}
	restartStart := -1.0
	for _, sp := range tr.Spans() {
		if sp.Name == "phase:restart" && (restartStart < 0 || sp.Start < restartStart) {
			restartStart = sp.Start
		}
	}
	if restartStart < 0 {
		t.Fatal("no restart phase span in healthy run")
	}

	res, err := RunOnceWrapped(faultMachCfg(), "pvfs", 4, cfg, BackendMPIIO,
		func(fs pfs.FileSystem) pfs.FileSystem {
			fs.(pfs.StripeFaultInjector).FailDataServerAt(3, restartStart+1e-9)
			return fs
		})
	if err != nil {
		t.Fatalf("restart with one dead replica server did not complete: %v (failovers=%d scrubFailures=%d)",
			err, res.CASFailovers, res.ScrubFailures)
	}
	if !res.Verified {
		t.Fatal("replicated restart did not verify after server death")
	}
	if res.RestartFallbacks != 0 {
		t.Fatalf("RestartFallbacks = %d, want 0 (reads must fail over, not fall back)", res.RestartFallbacks)
	}
	if res.CASFailovers == 0 {
		t.Fatal("no failovers recorded — the dead server was never in any read path")
	}
}

// TestSoleGenerationCorruptionSurfacesTypedError is the satellite
// regression: Generations=1 with the only generation persistently corrupted
// must end in a typed *RestartError — never a panic, and never a silent
// restart from zeroed state — under both the plain and castore dump paths.
func TestSoleGenerationCorruptionSurfacesTypedError(t *testing.T) {
	for _, tc := range []struct {
		name    string
		castore bool
		target  string
	}{
		{"plain", false, "dump00.raw"},
		{"castore", true, "cas/"},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := Tiny()
			cfg.CAStore = tc.castore
			cfg.ScrubOnDump = true
			cfg.Generations = 1
			var injector *faultfs.FS
			res, err := RunOnceWrapped(faultMachCfg(), "pvfs", 4, cfg, BackendMPIIO,
				func(fs pfs.FileSystem) pfs.FileSystem {
					// No MaxInject: every write to the sole generation stays
					// corrupt, so re-dumps cannot repair it.
					injector = faultfs.Wrap(fs, faultfs.Config{
						Mode: faultfs.CorruptWrite, EveryN: 3, MinBytes: 2048,
						FileSubstr: tc.target,
					})
					return injector
				})
			var rerr *RestartError
			if !errors.As(err, &rerr) {
				t.Fatalf("err = %v, want *RestartError", err)
			}
			if rerr.Generations != 1 || rerr.Dumps != cfg.Dumps {
				t.Fatalf("RestartError = %+v, want Generations=1 Dumps=%d", rerr, cfg.Dumps)
			}
			if injector.Injected() == 0 {
				t.Fatal("no faults injected; test proves nothing")
			}
			if res == nil {
				t.Fatal("Result must be returned alongside the typed error")
			}
			if res.Verified {
				t.Fatal("corrupted sole generation must not verify")
			}
		})
	}
}
