package enzo

import (
	"fmt"

	"repro/internal/amr"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/obs"
)

// The paper's direct MPI-IO port (Section 3.2/3.3): all grids live in a
// single shared file whose layout is computed from the replicated
// hierarchy metadata (grids in ID order, arrays in the fixed access
// order, explicit offsets — no in-file directory). Baryon fields use
// collective two-phase I/O with subarray file views; particle arrays use
// block-wise independent I/O with a parallel sort (writes) or a
// position-based redistribution (reads).

func icRawFile() string { return "ic.raw" }

// gridArray returns the raw bytes of a named array of an in-memory grid.
func gridArray(g *amr.Grid, name string) []byte {
	for fi, n := range amr.FieldNames {
		if n == name {
			return g.Fields[fi]
		}
	}
	for k, pa := range amr.ParticleArrays {
		if pa.Name == name {
			return g.Particles.Arrays[k]
		}
	}
	panic(fmt.Sprintf("enzo: grid %d has no array %q", g.ID, name))
}

func dumpRawFile(d int) string { return fmt.Sprintf("dump%02d.raw", d) }

// fieldRuns returns rank r's file view for one baryon field of grid g in
// the shared file: the flattened (Block,Block,Block) subarray shifted to
// the array's offset.
func (s *Sim) fieldRuns(g core.GridMeta, name string, sub mpi.Subarray) []mpi.Run {
	base, _ := s.layout.ArrayOffset(g.ID, name)
	runs := sub.Flatten() // fresh slice: safe to shift in place
	for i := range runs {
		runs[i].Off += base
	}
	return runs
}

// particleColList builds the explicit (offset,length) vector covering
// rank rows [lo,hi) of every particle array of one grid — the scattered
// block-wise pattern that list-I/O moves in one file-domain pass instead
// of one independent request (or sieved extent) per array. arrayOff maps
// an array name to its base file offset; entries come out in array order,
// matching the column layout of flatColumnsFromRows/splitCols.
func particleColList(arrayOff func(name string) int64, lo, hi int64) (offs, lens []int64, total int64) {
	offs = make([]int64, len(amr.ParticleArrays))
	lens = make([]int64, len(amr.ParticleArrays))
	for k, pa := range amr.ParticleArrays {
		offs[k] = arrayOff(pa.Name) + lo*int64(pa.ElemSize)
		lens[k] = (hi - lo) * int64(pa.ElemSize)
		total += lens[k]
	}
	return offs, lens, total
}

// splitCols slices one flat list-I/O buffer into per-array columns
// (entry order = array order, as particleColList builds it).
func splitCols(flat []byte, lens []int64) [][]byte {
	cols := make([][]byte, len(lens))
	var p int64
	for k, n := range lens {
		cols[k] = flat[p : p+n]
		p += n
	}
	return cols
}

func (s *Sim) rawWriteIC(h *amr.Hierarchy) {
	if s.r.Rank() != 0 {
		return
	}
	f, err := mpiio.OpenIndependent(s.r, s.fs, icRawFile(), mpiio.ModeCreate, s.hints)
	if err != nil {
		panic(err)
	}
	for _, g := range h.Grids {
		gm := s.meta.Grids[g.ID]
		for fi, name := range amr.FieldNames {
			off, _ := s.layout.ArrayOffset(gm.ID, name)
			f.WriteAt(g.Fields[fi], off)
		}
		for k, pa := range amr.ParticleArrays {
			if g.Particles.N == 0 {
				break
			}
			off, _ := s.layout.ArrayOffset(gm.ID, pa.Name)
			f.WriteAt(g.Particles.Arrays[k], off)
		}
	}
	f.Close()
}

// rawReadGridPartitioned reads one grid from the shared file into the
// rank's partition: collective reads for the fields, block-wise
// independent reads plus position redistribution for the particles.
// Collective: all ranks must call it in the same order.
func (s *Sim) rawReadGridPartitioned(f *mpiio.File, g core.GridMeta) *partition {
	defer obs.Begin(s.r.Proc(), obs.LayerApp, "grid_read").Attr("grid", fmt.Sprint(g.ID)).End()
	p := &partition{gridID: g.ID, sub: core.FieldSubarray(g, s.pz, s.py, s.px, s.r.Rank())}
	p.fields = make([][]byte, len(amr.FieldNames))
	for fi, name := range amr.FieldNames {
		buf := make([]byte, p.sub.Bytes())
		if s.localMode {
			// Node-local disks: each rank independently reads the
			// partition it staged at setup.
			f.ReadRuns(s.fieldRuns(g, name, p.sub), buf)
		} else {
			f.ReadAtAll(s.fieldRuns(g, name, p.sub), buf)
		}
		p.fields[fi] = buf
	}
	if g.NParticles == 0 {
		p.particles = amr.NewParticleSet(0)
		return p
	}
	lo, hi := core.BlockRange(g.NParticles, s.r.Size(), s.r.Rank())
	if s.localMode {
		rng := s.localICRows[g.ID]
		lo, hi = rng[0], rng[1]
	}
	offs, lens, total := particleColList(func(name string) int64 {
		base, _ := s.layout.ArrayOffset(g.ID, name)
		return base
	}, lo, hi)
	flat := make([]byte, total)
	f.ReadList(offs, lens, flat)
	rows := rowsFromColumns(splitCols(flat, lens))
	s.r.CopyCost(int64(len(rows)))
	p.particles = s.redistributeByPosition(rows, g)
	return p
}

func (s *Sim) rawReadInitial() {
	f, err := mpiio.Open(s.r, s.fs, icRawFile(), mpiio.ModeRead, s.hints)
	if err != nil {
		panic(err)
	}
	s.top = s.rawReadGridPartitioned(f, s.meta.Top())
	for _, g := range s.meta.Subgrids() {
		s.partials = append(s.partials, s.rawReadGridPartitioned(f, g))
	}
	f.Close()
}

func (s *Sim) rawWriteDump(d int) {
	f, err := mpiio.Open(s.r, s.fs, dumpRawFile(d), mpiio.ModeCreate, s.hints)
	if err != nil {
		panic(err)
	}
	// Top grid fields: collective two-phase writes, one per array.
	g := s.meta.Top()
	topSp := obs.Begin(s.r.Proc(), obs.LayerApp, "grid_write").Attr("grid", "0")
	for fi, name := range amr.FieldNames {
		s.dWriteAtAll(f, s.fieldRuns(g, name, s.top.sub), s.top.fields[fi])
	}
	// Top grid particles: parallel sort by ID, then block-wise
	// non-collective contiguous writes ("the block-wise pattern for 1-D
	// arrays always results in contiguous access in each processor").
	if g.NParticles > 0 {
		sortedRows := s.parallelSortByID(&s.top.particles)
		myCount := int64(len(sortedRows) / rowSize())
		rowOff := s.r.ExscanInt64(myCount)
		flat, _ := flatColumnsFromRows(sortedRows)
		s.r.CopyCost(int64(len(sortedRows)))
		offs, lens, _ := particleColList(func(name string) int64 {
			base, _ := s.layout.ArrayOffset(g.ID, name)
			return base
		}, rowOff, rowOff+myCount)
		s.dWriteList(f, offs, lens, flat)
		s.localPartRows = [2]int64{rowOff, rowOff + myCount}
	}
	topSp.End()
	// Subgrids: all grids go into the same shared file, but — as in the
	// original design, which the port preserves — "each processor writes
	// its own subgrids ... in parallel without communication": the owner
	// issues independent explicit-offset writes (MPI_File_write_at) at
	// locations computed from the replicated hierarchy metadata. Wrapping
	// these single-owner arrays in write_all would serialize the dump on
	// every platform, since even ROMIO's independent fallback synchronizes
	// the participants at its offset exchange.
	if s.backend == BackendMPIIOCB && !s.localMode {
		// Variant: every array goes through MPI_File_write_all with
		// collective buffering forced, as under romio_cb_write=enable.
		// The per-array synchronization serializes the owners' writes —
		// the communication overhead the paper observes on slow networks.
		for _, gm := range s.meta.Subgrids() {
			grid := s.owned[gm.ID] // nil on non-owners
			sp := obs.Begin(s.r.Proc(), obs.LayerApp, "grid_write").Attr("grid", fmt.Sprint(gm.ID))
			for _, a := range gm.Arrays() {
				var runs []mpi.Run
				var data []byte
				if grid != nil {
					off, length := s.layout.ArrayOffset(gm.ID, a.Name)
					runs = []mpi.Run{{Off: off, Len: length}}
					data = gridArray(grid, a.Name)
				}
				s.dWriteAtAll(f, runs, data)
			}
			sp.End()
		}
		s.dClose(f)
		return
	}
	for _, gm := range s.meta.Subgrids() {
		grid := s.owned[gm.ID] // nil on non-owners
		if grid == nil {
			continue
		}
		sp := obs.Begin(s.r.Proc(), obs.LayerApp, "grid_write").Attr("grid", fmt.Sprint(gm.ID))
		for fi, name := range amr.FieldNames {
			off, _ := s.layout.ArrayOffset(gm.ID, name)
			s.dWriteAt(f, grid.Fields[fi], off)
		}
		if gm.NParticles > 0 {
			for k, pa := range amr.ParticleArrays {
				off, _ := s.layout.ArrayOffset(gm.ID, pa.Name)
				s.dWriteAt(f, grid.Particles.Arrays[k], off)
			}
		}
		sp.End()
	}
	s.dClose(f)
}

// gridExtent is the contiguous shared-file region holding every array of
// one grid — the layout places a grid's arrays back to back, so a restart
// reader can fetch the whole grid with one request.
func (s *Sim) gridExtent(gm core.GridMeta) (lo, hi int64) {
	for i, a := range gm.Arrays() {
		off, length := s.layout.ArrayOffset(gm.ID, a.Name)
		if i == 0 || off < lo {
			lo = off
		}
		if i == 0 || off+length > hi {
			hi = off + length
		}
	}
	return lo, hi
}

// rawSliceGrid assembles a grid from its coalesced [lo,·) extent read.
func (s *Sim) rawSliceGrid(gm core.GridMeta, buf []byte, lo int64) *amr.Grid {
	grid := &amr.Grid{
		ID: gm.ID, Level: gm.Level, Parent: gm.Parent, Dims: gm.Dims,
		LeftEdge: gm.LeftEdge, RightEdge: gm.RightEdge,
	}
	grid.Fields = make([][]byte, len(amr.FieldNames))
	for fi, name := range amr.FieldNames {
		off, length := s.layout.ArrayOffset(gm.ID, name)
		grid.Fields[fi] = buf[off-lo : off-lo+length]
	}
	if gm.NParticles > 0 {
		ps := amr.ParticleSet{N: int(gm.NParticles), Arrays: make([][]byte, len(amr.ParticleArrays))}
		for k, pa := range amr.ParticleArrays {
			off, length := s.layout.ArrayOffset(gm.ID, pa.Name)
			ps.Arrays[k] = buf[off-lo : off-lo+length]
		}
		grid.Particles = ps
	} else {
		grid.Particles = amr.NewParticleSet(0)
	}
	return grid
}

func (s *Sim) rawReadRestart(d int) {
	f, err := mpiio.Open(s.r, s.fs, dumpRawFile(d), mpiio.ModeRead, s.hints)
	if err != nil {
		panic(err)
	}
	// Top grid: collective field reads, block-wise particle reads with
	// redistribution. All fields are issued before any settles, so the
	// read-ahead pipeline drains one field's devices under the next one's
	// request exchange. Tolerant read-backs use independent sieved reads
	// instead of the collective: one rank's exhausted retries must not
	// desynchronize a two-phase exchange.
	g := s.meta.Top()
	topSp := obs.Begin(s.r.Proc(), obs.LayerApp, "grid_read").Attr("grid", "0")
	s.top = &partition{gridID: 0, sub: core.FieldSubarray(g, s.pz, s.py, s.px, s.r.Rank())}
	s.top.fields = make([][]byte, len(amr.FieldNames))
	fieldSettle := make([]func(), len(amr.FieldNames))
	for fi, name := range amr.FieldNames {
		buf := make([]byte, s.top.sub.Bytes())
		runs := s.fieldRuns(g, name, s.top.sub)
		if s.tolerant {
			s.tolerantIO(func() { f.ReadRuns(runs, buf) })
			fieldSettle[fi] = func() {}
		} else {
			fieldSettle[fi] = s.rReadAtAll(f, runs, buf)
		}
		s.top.fields[fi] = buf
	}
	for _, settle := range fieldSettle {
		settle()
	}
	if g.NParticles > 0 {
		lo, hi := core.BlockRange(g.NParticles, s.r.Size(), s.r.Rank())
		if s.localMode {
			lo, hi = s.localPartRows[0], s.localPartRows[1]
		}
		offs, lens, total := particleColList(func(name string) int64 {
			base, _ := s.layout.ArrayOffset(g.ID, name)
			return base
		}, lo, hi)
		flat := make([]byte, total)
		s.rReadListTol(f, offs, lens, flat)()
		rows := rowsFromColumns(splitCols(flat, lens))
		s.r.CopyCost(int64(len(rows)))
		s.top.particles = s.redistributeByPosition(rows, g)
	} else {
		s.top.particles = amr.NewParticleSet(0)
	}
	topSp.End()
	// Subgrids: round-robin whole-grid reads. Each grid's arrays are
	// adjacent in the shared file, so the per-array loop of independent
	// reads coalesces into one contiguous request per grid, double-buffered
	// — the next grid's read is on the devices before the current one is
	// unpacked.
	owners := s.restartOwners()
	var finishPrev func()
	for _, gm := range s.meta.Subgrids() {
		if owners[gm.ID] != s.r.Rank() {
			continue
		}
		gm := gm
		sp := obs.Begin(s.r.Proc(), obs.LayerApp, "grid_read").Attr("grid", fmt.Sprint(gm.ID))
		lo, hi := s.gridExtent(gm)
		buf := make([]byte, hi-lo)
		settle := s.rReadAtTol(f, buf, lo)
		sp.End()
		if finishPrev != nil {
			finishPrev()
		}
		finishPrev = func() {
			settle()
			s.owned[gm.ID] = s.rawSliceGrid(gm, buf, lo)
		}
	}
	if finishPrev != nil {
		finishPrev()
	}
	f.Close()
}
