package enzo

import (
	"fmt"

	"repro/internal/amr"
	"repro/internal/core"
	"repro/internal/hdf5"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// The parallel HDF5 port (Section 3.4): the same access strategy as the
// direct MPI-IO version — collective access for the regular baryon
// fields, independent block-wise access for the irregular particle data,
// one shared file for all grids — but expressed through HDF5 datasets and
// hyperslab selections, which adds the library overheads of Section 4.5
// (collective dataset create/close, interleaved metadata, recursive
// hyperslab packing, rank-0-only attributes).

func icH5File() string { return "ic.h5" }

func dumpH5File(d int) string { return fmt.Sprintf("dump%02d.h5", d) }

func dsName(gridID int, array string) string { return fmt.Sprintf("g%04d/%s", gridID, array) }

// fullSel selects an entire dataset.
func fullSel(dims []int, elemSize int) mpi.Subarray {
	return mpi.Subarray{
		Sizes: dims, Subsizes: append([]int(nil), dims...),
		Starts: make([]int, len(dims)), ElemSize: elemSize,
	}
}

// emptySel selects nothing (for non-contributing ranks of a collective).
func emptySel(dims []int, elemSize int) mpi.Subarray {
	return mpi.Subarray{
		Sizes: dims, Subsizes: make([]int, len(dims)),
		Starts: make([]int, len(dims)), ElemSize: elemSize,
	}
}

// fieldSel is rank r's (Block,Block,Block) hyperslab of a field dataset.
func (s *Sim) fieldSel(g core.GridMeta) mpi.Subarray {
	return core.FieldSubarray(g, s.pz, s.py, s.px, s.r.Rank())
}

func (s *Sim) h5WriteIC(h *amr.Hierarchy) {
	hf, err := hdf5.Create(s.r, s.fs, icH5File(), s.h5cfg(icH5File()), s.hints)
	if err != nil {
		panic(err)
	}
	for _, gm := range s.meta.Grids {
		var grid *amr.Grid
		if s.r.Rank() == 0 {
			grid = h.Grids[gm.ID]
		}
		dims3 := []int{gm.Dims[0], gm.Dims[1], gm.Dims[2]}
		for fi, name := range amr.FieldNames {
			ds, err := hf.CreateDataset(dsName(gm.ID, name), dims3, amr.FieldElemSize)
			if err != nil {
				panic(err)
			}
			if s.r.Rank() == 0 {
				ds.WriteHyperslab(fullSel(dims3, amr.FieldElemSize), grid.Fields[fi])
			} else {
				ds.WriteHyperslab(emptySel(dims3, amr.FieldElemSize), nil)
			}
			ds.Close()
		}
		if gm.NParticles > 0 {
			dims1 := []int{int(gm.NParticles)}
			for k, pa := range amr.ParticleArrays {
				ds, err := hf.CreateDataset(dsName(gm.ID, pa.Name), dims1, pa.ElemSize)
				if err != nil {
					panic(err)
				}
				if s.r.Rank() == 0 {
					ds.WriteHyperslab(fullSel(dims1, pa.ElemSize), grid.Particles.Arrays[k])
				} else {
					ds.WriteHyperslab(emptySel(dims1, pa.ElemSize), nil)
				}
				ds.Close()
			}
		}
	}
	hf.Close()
}

// h5ReadGridPartitioned mirrors rawReadGridPartitioned through hyperslabs.
func (s *Sim) h5ReadGridPartitioned(hf *hdf5.File, g core.GridMeta) *partition {
	defer obs.Begin(s.r.Proc(), obs.LayerApp, "grid_read").Attr("grid", fmt.Sprint(g.ID)).End()
	p := &partition{gridID: g.ID, sub: s.fieldSel(g)}
	p.fields = make([][]byte, len(amr.FieldNames))
	for fi, name := range amr.FieldNames {
		ds, err := hf.OpenDataset(dsName(g.ID, name))
		if err != nil {
			panic(err)
		}
		if ds.Compressed() {
			// Compressed datasets store one independently packed segment
			// per writing rank; the IC was provisioned with this rank's
			// partition in its own slot.
			raw, err := ds.ReadCompressedSeg(s.r.Rank())
			if err != nil {
				panic(err)
			}
			p.fields[fi] = raw
			continue
		}
		buf := make([]byte, p.sub.Bytes())
		if s.localMode {
			// Node-local disks: read the partition staged at setup.
			ds.ReadHyperslabIndependent(p.sub, buf)
		} else {
			ds.ReadHyperslab(p.sub, buf)
		}
		p.fields[fi] = buf
	}
	if g.NParticles == 0 {
		p.particles = amr.NewParticleSet(0)
		return p
	}
	lo, hi := core.BlockRange(g.NParticles, s.r.Size(), s.r.Rank())
	if s.localMode || s.compressed() {
		// Rows staged at provisioning time (both the local-disk mode and
		// the compressed IC path stage per-rank rows at setup).
		rng := s.localICRows[g.ID]
		lo, hi = rng[0], rng[1]
	}
	cols := make([][]byte, len(amr.ParticleArrays))
	for k, pa := range amr.ParticleArrays {
		ds, err := hf.OpenDataset(dsName(g.ID, pa.Name))
		if err != nil {
			panic(err)
		}
		sel := mpi.Subarray{Sizes: []int{int(g.NParticles)}, Subsizes: []int{int(hi - lo)},
			Starts: []int{int(lo)}, ElemSize: pa.ElemSize}
		buf := make([]byte, sel.Bytes())
		ds.ReadHyperslabIndependent(sel, buf)
		cols[k] = buf
	}
	rows := rowsFromColumns(cols)
	s.r.CopyCost(int64(len(rows)))
	p.particles = s.redistributeByPosition(rows, g)
	return p
}

func (s *Sim) h5ReadInitial() {
	hf, err := hdf5.OpenRead(s.r, s.fs, icH5File(), s.h5cfg(icH5File()), s.hints)
	if err != nil {
		panic(err)
	}
	s.top = s.h5ReadGridPartitioned(hf, s.meta.Top())
	for _, g := range s.meta.Subgrids() {
		s.partials = append(s.partials, s.h5ReadGridPartitioned(hf, g))
	}
	hf.Close()
}

func (s *Sim) h5WriteDump(d int) {
	hf, err := hdf5.Create(s.r, s.fs, dumpH5File(d), s.h5cfg(dumpH5File(d)), s.hints)
	if err != nil {
		panic(err)
	}
	s.dH5Open(hf)
	// Top grid fields: collective hyperslab writes.
	g := s.meta.Top()
	topSp := obs.Begin(s.r.Proc(), obs.LayerApp, "grid_write").Attr("grid", "0")
	dims3 := []int{g.Dims[0], g.Dims[1], g.Dims[2]}
	for fi, name := range amr.FieldNames {
		if s.compressed() {
			// Each rank packs and appends its own partition segment.
			ds, err := hf.CreateDatasetZ(dsName(g.ID, name), dims3, amr.FieldElemSize, s.codec)
			if err != nil {
				panic(err)
			}
			s.dH5Z(ds, s.top.fields[fi])
			ds.Close()
			continue
		}
		ds, err := hf.CreateDataset(dsName(g.ID, name), dims3, amr.FieldElemSize)
		if err != nil {
			panic(err)
		}
		s.dH5Slab(ds, s.top.sub, s.top.fields[fi])
		ds.Close()
	}
	// Top grid particles: parallel sort, then independent 1-D hyperslabs.
	if g.NParticles > 0 {
		sortedRows := s.parallelSortByID(&s.top.particles)
		myCount := int64(len(sortedRows) / rowSize())
		rowOff := s.r.ExscanInt64(myCount)
		cols := columnsFromRows(sortedRows)
		s.r.CopyCost(int64(len(sortedRows)))
		for k, pa := range amr.ParticleArrays {
			ds, err := hf.CreateDataset(dsName(g.ID, pa.Name), []int{int(g.NParticles)}, pa.ElemSize)
			if err != nil {
				panic(err)
			}
			sel := mpi.Subarray{Sizes: []int{int(g.NParticles)}, Subsizes: []int{int(myCount)},
				Starts: []int{int(rowOff)}, ElemSize: pa.ElemSize}
			s.dH5SlabIndep(ds, sel, cols[k])
			ds.Close()
		}
		s.localPartRows = [2]int64{rowOff, rowOff + myCount}
	}
	topSp.End()
	// Metadata attributes: only processor 0 may create/write them
	// (overhead 4 of Section 4.5).
	hf.WriteAttribute("top_grid_dims", []byte(fmt.Sprintf("%v", g.Dims)))
	// Subgrids: every dataset creation synchronizes all processors even
	// though a single owner writes the data.
	for _, gm := range s.meta.Subgrids() {
		grid := s.owned[gm.ID] // nil on non-owners
		sp := obs.Begin(s.r.Proc(), obs.LayerApp, "grid_write").Attr("grid", fmt.Sprint(gm.ID))
		gdims := []int{gm.Dims[0], gm.Dims[1], gm.Dims[2]}
		for fi, name := range amr.FieldNames {
			if s.compressed() {
				// Only the owner contributes bytes; everyone still pays
				// the collective create/close and the length exchange.
				ds, err := hf.CreateDatasetZ(dsName(gm.ID, name), gdims, amr.FieldElemSize, s.codec)
				if err != nil {
					panic(err)
				}
				var raw []byte
				if grid != nil {
					raw = grid.Fields[fi]
				}
				s.dH5Z(ds, raw)
				ds.Close()
				continue
			}
			ds, err := hf.CreateDataset(dsName(gm.ID, name), gdims, amr.FieldElemSize)
			if err != nil {
				panic(err)
			}
			if grid != nil {
				s.dH5SlabIndep(ds, fullSel(gdims, amr.FieldElemSize), grid.Fields[fi])
			}
			ds.Close()
		}
		if gm.NParticles > 0 {
			pdims := []int{int(gm.NParticles)}
			for k, pa := range amr.ParticleArrays {
				ds, err := hf.CreateDataset(dsName(gm.ID, pa.Name), pdims, pa.ElemSize)
				if err != nil {
					panic(err)
				}
				if grid != nil {
					s.dH5SlabIndep(ds, fullSel(pdims, pa.ElemSize), grid.Particles.Arrays[k])
				}
				ds.Close()
			}
		}
		hf.WriteAttribute(fmt.Sprintf("g%04d_level", gm.ID), []byte{byte(gm.Level)})
		sp.End()
	}
	s.dH5Close(hf)
}

// h5DS opens a dataset, or returns nil when the container itself failed a
// tolerant open (hf == nil) — readers treat a nil dataset as "leave the
// zero-filled buffer in place".
func (s *Sim) h5DS(hf *hdf5.File, name string) *hdf5.Dataset {
	if hf == nil {
		return nil
	}
	ds, err := hf.OpenDataset(name)
	if err != nil {
		panic(err)
	}
	return ds
}

func (s *Sim) h5ReadRestart(d int) {
	hf, err := hdf5.OpenRead(s.r, s.fs, dumpH5File(d), s.h5cfg(dumpH5File(d)), s.hints)
	if err != nil {
		if !s.tolerant {
			panic(err)
		}
		// The metadata index was unreadable — on every rank, since OpenRead
		// broadcasts its failure. The generation is damaged wholesale; the
		// loops below degrade to zero-filled buffers (nil datasets) but the
		// collective particle redistribution still runs so the tolerant walk
		// stays in step across ranks.
		s.damaged = true
		hf = nil
	}
	g := s.meta.Top()
	topSp := obs.Begin(s.r.Proc(), obs.LayerApp, "grid_read").Attr("grid", "0")
	s.top = &partition{gridID: 0, sub: s.fieldSel(g)}
	s.top.fields = make([][]byte, len(amr.FieldNames))
	// Every field's transfer is issued before any settles, so under the
	// read-ahead pipeline one dataset's devices drain while the next one's
	// request exchange (or segment decode) runs. Tolerant read-backs use
	// independent reads instead of the collective: one rank's exhausted
	// retries must not desynchronize a two-phase exchange.
	topSettle := make([]func(), len(amr.FieldNames))
	for fi, name := range amr.FieldNames {
		ds := s.h5DS(hf, dsName(g.ID, name))
		if ds != nil && ds.Compressed() {
			// Restart uses the dump decomposition: this rank's segment is
			// exactly its partition.
			get := s.rH5ZRead(ds, s.r.Rank())
			fi := fi
			topSettle[fi] = func() {
				raw := get()
				if raw == nil {
					raw = make([]byte, s.top.sub.Bytes())
				}
				s.top.fields[fi] = raw
			}
			continue
		}
		buf := make([]byte, s.top.sub.Bytes())
		s.top.fields[fi] = buf
		switch {
		case ds == nil:
			topSettle[fi] = func() {}
		case s.tolerant:
			s.tolerantIO(func() { ds.ReadHyperslabIndependent(s.top.sub, buf) })
			topSettle[fi] = func() {}
		default:
			topSettle[fi] = s.rH5Slab(ds, s.top.sub, buf)
		}
	}
	for _, settle := range topSettle {
		settle()
	}
	if g.NParticles > 0 {
		lo, hi := core.BlockRange(g.NParticles, s.r.Size(), s.r.Rank())
		if s.localMode {
			lo, hi = s.localPartRows[0], s.localPartRows[1]
		}
		cols := make([][]byte, len(amr.ParticleArrays))
		colSettle := make([]func(), len(amr.ParticleArrays))
		for k, pa := range amr.ParticleArrays {
			ds := s.h5DS(hf, dsName(g.ID, pa.Name))
			sel := mpi.Subarray{Sizes: []int{int(g.NParticles)}, Subsizes: []int{int(hi - lo)},
				Starts: []int{int(lo)}, ElemSize: pa.ElemSize}
			buf := make([]byte, sel.Bytes())
			colSettle[k] = s.rH5SlabIndepTol(ds, sel, buf)
			cols[k] = buf
		}
		for _, settle := range colSettle {
			settle()
		}
		rows := rowsFromColumns(cols)
		s.r.CopyCost(int64(len(rows)))
		s.top.particles = s.redistributeByPosition(rows, g)
	} else {
		s.top.particles = amr.NewParticleSet(0)
	}
	topSp.End()
	// Subgrids: every dataset read of a grid is issued together and the
	// grids are double-buffered — the next grid's transfers are on the
	// devices while the current one settles and decodes.
	owners := s.restartOwners()
	var finishPrev func()
	for _, gm := range s.meta.Subgrids() {
		if owners[gm.ID] != s.r.Rank() {
			continue
		}
		gm := gm
		sp := obs.Begin(s.r.Proc(), obs.LayerApp, "grid_read").Attr("grid", fmt.Sprint(gm.ID))
		grid := &amr.Grid{
			ID: gm.ID, Level: gm.Level, Parent: gm.Parent, Dims: gm.Dims,
			LeftEdge: gm.LeftEdge, RightEdge: gm.RightEdge,
		}
		grid.Fields = make([][]byte, len(amr.FieldNames))
		gdims := []int{gm.Dims[0], gm.Dims[1], gm.Dims[2]}
		var fins []func()
		for fi, name := range amr.FieldNames {
			ds := s.h5DS(hf, dsName(gm.ID, name))
			if ds != nil && ds.Compressed() {
				// The dump owner wrote the whole array as its one segment;
				// concatenating the non-empty slots recovers it without
				// knowing who the owner was.
				get := s.rH5ZRead(ds, -1)
				fi := fi
				fins = append(fins, func() {
					raw := get()
					if raw == nil {
						raw = make([]byte, int64(gm.Cells())*amr.FieldElemSize)
					}
					grid.Fields[fi] = raw
				})
				continue
			}
			buf := make([]byte, int64(gm.Cells())*amr.FieldElemSize)
			grid.Fields[fi] = buf
			fins = append(fins, s.rH5SlabIndepTol(ds, fullSel(gdims, amr.FieldElemSize), buf))
		}
		if gm.NParticles > 0 {
			pdims := []int{int(gm.NParticles)}
			ps := amr.ParticleSet{N: int(gm.NParticles), Arrays: make([][]byte, len(amr.ParticleArrays))}
			for k, pa := range amr.ParticleArrays {
				ds := s.h5DS(hf, dsName(gm.ID, pa.Name))
				buf := make([]byte, gm.NParticles*int64(pa.ElemSize))
				ps.Arrays[k] = buf
				fins = append(fins, s.rH5SlabIndepTol(ds, fullSel(pdims, pa.ElemSize), buf))
			}
			grid.Particles = ps
		} else {
			grid.Particles = amr.NewParticleSet(0)
		}
		sp.End()
		if finishPrev != nil {
			finishPrev()
		}
		finishPrev = func() {
			for _, fin := range fins {
				fin()
			}
			s.owned[gm.ID] = grid
		}
	}
	if finishPrev != nil {
		finishPrev()
	}
	if hf != nil {
		hf.Close()
	}
}
