package enzo

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"repro/internal/amr"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// TestInitialReadMatchesTruth checks, for every backend and for shared vs
// node-local storage, that the timed initial read delivers exactly the
// data the hierarchy generator produced: field blocks byte-for-byte and
// particles as the correct per-rank set.
func TestInitialReadMatchesTruth(t *testing.T) {
	cfg := Tiny()
	truth := amr.BuildHierarchy(cfg.Dims, cfg.NParticles, cfg.PreRefine, cfg.Threshold, cfg.Seed)
	meta := core.FromHierarchy(truth)

	for _, backend := range []Backend{BackendHDF4, BackendMPIIO, BackendHDF5} {
		for _, fsKind := range []string{"xfs", "local"} {
			backend, fsKind := backend, fsKind
			t.Run(fmt.Sprintf("%s-%s", backend, fsKind), func(t *testing.T) {
				const nprocs = 4
				eng := sim.NewEngine()
				mach := machine.New(testMachineCfg())
				fs, err := MakeFS(fsKind, mach)
				if err != nil {
					t.Fatal(err)
				}
				res := &Result{}
				type rankState struct {
					top      *partition
					partials []*partition
				}
				states := make([]rankState, nprocs)
				mpi.NewWorld(eng, mach, nprocs, func(r *mpi.Rank) {
					s := NewSim(r, fs, backend, cfg, res)
					s.setup()
					s.readInitial()
					states[r.Rank()] = rankState{top: s.top, partials: s.partials}
				})
				if err := eng.Run(); err != nil {
					t.Fatal(err)
				}
				pz, py, px := mpi.ProcGrid3D(nprocs)
				// Verify every grid: root from .top, subgrids from .partials.
				for _, gm := range meta.Grids {
					g := truth.Grids[gm.ID]
					for rank := 0; rank < nprocs; rank++ {
						var p *partition
						if gm.ID == 0 {
							p = states[rank].top
						} else {
							p = states[rank].partials[gm.ID-1]
						}
						sub := mpi.BlockDecompose3D(gm.Dims, pz, py, px, rank, amr.FieldElemSize)
						for fi := range amr.FieldNames {
							want := sub.GatherSub(g.Fields[fi])
							if !bytes.Equal(p.fields[fi], want) {
								t.Fatalf("grid %d rank %d field %d: data mismatch", gm.ID, rank, fi)
							}
						}
					}
					// Particles: union across ranks must equal the truth set,
					// and each particle must sit on the rank owning its position.
					var gotIDs []int64
					for rank := 0; rank < nprocs; rank++ {
						var p *partition
						if gm.ID == 0 {
							p = states[rank].top
						} else {
							p = states[rank].partials[gm.ID-1]
						}
						for i := 0; i < p.particles.N; i++ {
							gotIDs = append(gotIDs, p.particles.ID(i))
							owner := core.OwnerOfPosition(p.particles.Position(i), gm, pz, py, px)
							if owner != rank {
								t.Fatalf("grid %d: particle %d on rank %d, owner should be %d",
									gm.ID, p.particles.ID(i), rank, owner)
							}
						}
					}
					var wantIDs []int64
					for i := 0; i < g.Particles.N; i++ {
						wantIDs = append(wantIDs, g.Particles.ID(i))
					}
					sort.Slice(gotIDs, func(i, j int) bool { return gotIDs[i] < gotIDs[j] })
					sort.Slice(wantIDs, func(i, j int) bool { return wantIDs[i] < wantIDs[j] })
					if len(gotIDs) != len(wantIDs) {
						t.Fatalf("grid %d: %d particles read, want %d", gm.ID, len(gotIDs), len(wantIDs))
					}
					for i := range wantIDs {
						if gotIDs[i] != wantIDs[i] {
							t.Fatalf("grid %d: particle ID sets differ", gm.ID)
						}
					}
				}
			})
		}
	}
}

// TestDumpFileContentsMatchAcrossBackends verifies that the MPI-IO shared
// dump file holds exactly the hierarchy's bytes at the layout's offsets.
func TestDumpFileContentsMatchAcrossBackends(t *testing.T) {
	cfg := Tiny()
	truth := amr.BuildHierarchy(cfg.Dims, cfg.NParticles, cfg.PreRefine, cfg.Threshold, cfg.Seed)
	meta := core.FromHierarchy(truth)
	layout := core.NewLayout(meta)

	eng := sim.NewEngine()
	mach := machine.New(testMachineCfg())
	fs, _ := MakeFS("xfs", mach)
	res := &Result{}
	mpi.NewWorld(eng, mach, 4, func(r *mpi.Rank) {
		s := NewSim(r, fs, BackendMPIIO, cfg, res)
		s.setup()
		s.readInitial()
		s.evolve()
		s.writeDump(0)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	// Read the dump file raw and compare the field arrays of every grid
	// (particle arrays are permuted by the ID sort for the top grid, so
	// compare fields only plus sorted top-grid IDs).
	eng2 := sim.NewEngine()
	var fileData []byte
	eng2.Spawn("reader", func(p *sim.Proc) {
		c := pfs.Client{Proc: p, Node: 0}
		f, err := fs.Open(c, dumpRawFile(0))
		if err != nil {
			panic(err)
		}
		fileData = make([]byte, layout.TotalBytes())
		f.ReadAt(c, fileData, 0)
	})
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	for _, gm := range meta.Grids {
		g := truth.Grids[gm.ID]
		for fi, name := range amr.FieldNames {
			off, length := layout.ArrayOffset(gm.ID, name)
			if !bytes.Equal(fileData[off:off+length], g.Fields[fi]) {
				t.Fatalf("grid %d field %s differs in dump file", gm.ID, name)
			}
		}
	}
	// Top-grid particle IDs in the dump must be sorted ascending.
	top := meta.Top()
	if top.NParticles > 1 {
		off, length := layout.ArrayOffset(0, "particle_id")
		prev := int64(-1)
		for p := off; p < off+length; p += 8 {
			var id int64
			for i := 0; i < 8; i++ {
				id |= int64(fileData[p+int64(i)]) << (8 * i)
			}
			if id < prev {
				t.Fatal("top-grid particles not sorted by ID in the dump")
			}
			prev = id
		}
	}
}
