package enzo

// Diagnostic breakdown used during calibration; run with
// go test ./internal/enzo -run Breakdown -v
import (
	"testing"

	"repro/internal/amr"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/sim"
)

func TestBreakdownXFS(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	cfg := AMR64()
	for _, backend := range []Backend{BackendHDF4, BackendMPIIO} {
		eng := sim.NewEngine()
		mach := machine.New(machine.Origin2000())
		fs, _ := MakeFS("xfs", mach)
		res := &Result{}
		nprocs := 16
		mpi.NewWorld(eng, mach, nprocs, func(r *mpi.Rank) {
			s := NewSim(r, fs, backend, cfg, res)
			s.setup()
			mark := func(name string, f func()) {
				r.Barrier()
				t0 := r.Now()
				f()
				r.Barrier()
				dt := r.AllreduceFloat64(r.Now()-t0, mpi.OpMax)
				if r.Rank() == 0 {
					t.Logf("%-6s %-22s %8.3fs", backend, name, dt)
				}
			}
			switch backend {
			case BackendHDF4:
				mark("read top", func() {
					s.top = s.hdf4ReadGridPartitioned(icGridFile(0), s.meta.Top())
				})
				mark("read subgrids", func() {
					for _, g := range s.meta.Subgrids() {
						s.partials = append(s.partials, s.hdf4ReadGridPartitioned(icGridFile(g.ID), g))
					}
				})
				mark("evolve", s.evolve)
				mark("write dump", func() { s.hdf4WriteDump(0) })
				s.clearState()
				mark("restart", func() { s.hdf4ReadRestart(0) })
			case BackendMPIIO:
				var f *mpiio.File
				mark("open", func() {
					var err error
					f, err = mpiio.Open(r, fs, icRawFile(), mpiio.ModeRead, s.hints)
					if err != nil {
						panic(err)
					}
				})
				g := s.meta.Top()
				mark("read top fields", func() {
					s.top = &partition{gridID: 0, sub: s.fieldSel(g)}
					s.top.fields = make([][]byte, len(amr.FieldNames))
					for fi, name := range amr.FieldNames {
						buf := make([]byte, s.top.sub.Bytes())
						f.ReadAtAll(s.fieldRuns(g, name, s.top.sub), buf)
						s.top.fields[fi] = buf
					}
				})
				mark("read top particles", func() {
					lo, hi := core.BlockRange(g.NParticles, r.Size(), r.Rank())
					cols := make([][]byte, len(amr.ParticleArrays))
					for k, pa := range amr.ParticleArrays {
						base, _ := s.layout.ArrayOffset(g.ID, pa.Name)
						buf := make([]byte, (hi-lo)*int64(pa.ElemSize))
						f.ReadAt(buf, base+lo*int64(pa.ElemSize))
						cols[k] = buf
					}
					rows := rowsFromColumns(cols)
					r.CopyCost(int64(len(rows)))
					s.top.particles = s.redistributeByPosition(rows, g)
				})
				var tFields, tPart, tRedist float64
				mark("read subgrids", func() {
					for _, sg := range s.meta.Subgrids() {
						p := &partition{gridID: sg.ID, sub: core.FieldSubarray(sg, s.pz, s.py, s.px, r.Rank())}
						p.fields = make([][]byte, len(amr.FieldNames))
						t0 := r.Now()
						for fi, name := range amr.FieldNames {
							buf := make([]byte, p.sub.Bytes())
							f.ReadAtAll(s.fieldRuns(sg, name, p.sub), buf)
							p.fields[fi] = buf
						}
						t1 := r.Now()
						tFields += t1 - t0
						if sg.NParticles > 0 {
							lo, hi := core.BlockRange(sg.NParticles, r.Size(), r.Rank())
							cols := make([][]byte, len(amr.ParticleArrays))
							for k, pa := range amr.ParticleArrays {
								base, _ := s.layout.ArrayOffset(sg.ID, pa.Name)
								buf := make([]byte, (hi-lo)*int64(pa.ElemSize))
								f.ReadAt(buf, base+lo*int64(pa.ElemSize))
								cols[k] = buf
							}
							t2 := r.Now()
							tPart += t2 - t1
							rows := rowsFromColumns(cols)
							r.CopyCost(int64(len(rows)))
							p.particles = s.redistributeByPosition(rows, sg)
							tRedist += r.Now() - t2
						} else {
							p.particles = amr.NewParticleSet(0)
						}
						s.partials = append(s.partials, p)
					}
				})
				if r.Rank() == 0 {
					t.Logf("   subgrid detail: fields=%.3f particles=%.3f redist=%.3f", tFields, tPart, tRedist)
				}
				f.Close()
				mark("evolve", s.evolve)
				mark("write top fields", func() {
					df, err := mpiio.Open(r, fs, "probe_top.raw", mpiio.ModeCreate, s.hints)
					if err != nil {
						panic(err)
					}
					for fi, name := range amr.FieldNames {
						df.WriteAtAll(s.fieldRuns(g, name, s.top.sub), s.top.fields[fi])
					}
					df.Close()
				})
				mark("write top particles", func() {
					df, _ := mpiio.Open(r, fs, "probe_part.raw", mpiio.ModeCreate, s.hints)
					sortedRows := s.parallelSortByID(&s.top.particles)
					myCount := int64(len(sortedRows) / rowSize())
					rowOff := r.ExscanInt64(myCount)
					cols := columnsFromRows(sortedRows)
					r.CopyCost(int64(len(sortedRows)))
					for k, pa := range amr.ParticleArrays {
						base, _ := s.layout.ArrayOffset(g.ID, pa.Name)
						df.WriteAt(cols[k], base+rowOff*int64(pa.ElemSize))
					}
					df.Close()
				})
				mark("write dump", func() { s.rawWriteDump(0) })
				s.clearState()
				mark("restart", func() { s.rawReadRestart(0) })
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	}
}
