package enzo

import (
	"strings"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/obs"
	"repro/internal/pfs"
)

// genSpanNames collects the per-generation app span names (dump:NN,
// redump:NN.t, scrub:NN) recorded for rank 0. dump:NN spans nested under
// a redump:* ancestor are the recovery re-write, not a new generation, and
// are excluded — matching how the diagnosis layer attributes them.
func genSpanNames(tr *obs.Tracer) map[string]int {
	var rank0 []obs.Span
	for _, sp := range tr.Spans() {
		if sp.Rank == 0 {
			rank0 = append(rank0, sp)
		}
	}
	underRedump := make([]bool, len(rank0))
	names := map[string]int{}
	for i, sp := range rank0 {
		if sp.Parent >= 0 {
			p := rank0[sp.Parent]
			underRedump[i] = underRedump[sp.Parent] ||
				(p.Layer == obs.LayerApp && strings.HasPrefix(p.Name, "redump:"))
		}
		if sp.Layer != obs.LayerApp {
			continue
		}
		if strings.HasPrefix(sp.Name, "dump:") && underRedump[i] {
			continue
		}
		if strings.HasPrefix(sp.Name, "dump:") ||
			strings.HasPrefix(sp.Name, "redump:") ||
			strings.HasPrefix(sp.Name, "scrub:") {
			names[sp.Name]++
		}
	}
	return names
}

// TestGenerationSpansKeyedByDump guards against the span-label collision
// where every checkpoint generation recorded under the same name: each
// dump generation must get its own dump:NN span, exactly once per rank.
func TestGenerationSpansKeyedByDump(t *testing.T) {
	cfg := Tiny()
	cfg.Dumps = 2
	tr := obs.NewTracer()
	res, err := RunOnceTraced(faultMachCfg(), "xfs", 4, cfg, BackendMPIIO, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("run did not verify")
	}
	names := genSpanNames(tr)
	for _, want := range []string{"dump:00", "dump:01"} {
		if names[want] != 1 {
			t.Errorf("span %q recorded %d times on rank 0, want 1 (have %v)",
				want, names[want], names)
		}
	}
}

// TestRedumpSpansKeyedByAttempt forces a scrub failure and checks that the
// recovery re-dump gets its own redump:NN.t span (keyed by generation and
// attempt, not colliding with the original dump:NN), and that the
// diagnosis layer attributes the redump cost separately from the dump.
func TestRedumpSpansKeyedByAttempt(t *testing.T) {
	cfg := Tiny()
	cfg.ScrubOnDump = true
	tr := obs.NewTracer()
	res, err := RunOnceWrappedTraced(faultMachCfg(), "xfs", 4, cfg, BackendMPIIO,
		func(fs pfs.FileSystem) pfs.FileSystem {
			return faultfs.Wrap(fs, faultfs.Config{
				Mode: faultfs.CorruptWrite, EveryN: 3, MinBytes: 2048,
				FileSubstr: "dump00.raw", MaxInject: 3,
			})
		}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Redumps == 0 {
		t.Fatal("no re-dump happened; test proves nothing")
	}
	names := genSpanNames(tr)
	if names["dump:00"] != 1 {
		t.Errorf("dump:00 recorded %d times on rank 0, want 1 (have %v)", names["dump:00"], names)
	}
	if names["scrub:00"] == 0 {
		t.Errorf("no scrub:00 span on rank 0 (have %v)", names)
	}
	redumps := 0
	for name := range names {
		if strings.HasPrefix(name, "redump:00.") {
			redumps += names[name]
		}
	}
	if redumps != int(res.Redumps) {
		t.Errorf("rank 0 has %d redump:00.* spans, want %d (have %v)", redumps, res.Redumps, names)
	}
}
