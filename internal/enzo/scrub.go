package enzo

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/obs"
)

// Checkpoint integrity (Config.ScrubOnDump): every dump generation gets a
// manifest file dumpNN.sum holding per-rank top-grid hashes and the global
// (gridID, hash) pairs of the dumped state, protected by a trailing CRC so
// the manifest itself cannot lie silently. A scrub is a full tolerant
// read-back of the generation (the restart path, with integrity failures
// recorded instead of fatal) compared against the manifest; a dirty
// generation is re-dumped from the still-live state. On restart the run
// walks generations newest-first and keeps the first one whose read-back
// matches its manifest — the generation fallback.
//
// Everything runs in virtual time on the simulated file system, so scrub
// and recovery costs show up in the phase accounting ("scrub") like any
// other I/O.

const sumMagic = "SUM1"

func manifestFile(d int) string { return fmt.Sprintf("dump%02d.sum", d) }

// encGridHashes encodes a (gridID, hash) map sorted by ID, 16 bytes per
// entry.
func encGridHashes(m map[int]uint64) []byte {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]byte, 0, len(ids)*16)
	for _, id := range ids {
		var b [16]byte
		binary.LittleEndian.PutUint64(b[:], uint64(id))
		binary.LittleEndian.PutUint64(b[8:], m[id])
		out = append(out, b[:]...)
	}
	return out
}

func decGridHashes(chunks [][]byte) map[int]uint64 {
	m := make(map[int]uint64)
	for _, c := range chunks {
		for p := 0; p+16 <= len(c); p += 16 {
			id := binary.LittleEndian.Uint64(c[p:])
			m[int(id)] = binary.LittleEndian.Uint64(c[p+8:])
		}
	}
	return m
}

// topRow packs one rank's top-grid hashes (24 bytes).
func topRow(snap snapshotState) []byte {
	var b [24]byte
	binary.LittleEndian.PutUint64(b[:], snap.topFields)
	binary.LittleEndian.PutUint64(b[8:], snap.topParticles)
	binary.LittleEndian.PutUint64(b[16:], uint64(snap.topCount))
	return b[:]
}

// manifest is the decoded dumpNN.sum.
type manifest struct {
	rows  [][]byte // np × 24-byte top rows, rank order
	grids map[int]uint64
}

func encodeManifest(np int, rows [][]byte, grids []byte) []byte {
	out := make([]byte, 0, 4+4+np*24+4+len(grids)+4)
	out = append(out, sumMagic...)
	var u [4]byte
	binary.LittleEndian.PutUint32(u[:], uint32(np))
	out = append(out, u[:]...)
	for _, row := range rows {
		out = append(out, row...)
	}
	binary.LittleEndian.PutUint32(u[:], uint32(len(grids)/16))
	out = append(out, u[:]...)
	out = append(out, grids...)
	binary.LittleEndian.PutUint32(u[:], crc32.ChecksumIEEE(out))
	out = append(out, u[:]...)
	return out
}

// decodeManifest validates the framing and CRC; any damage yields nil.
func decodeManifest(b []byte, np int) *manifest {
	if len(b) < 4+4+np*24+4+4 || string(b[:4]) != sumMagic {
		return nil
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil
	}
	if int(binary.LittleEndian.Uint32(b[4:])) != np {
		return nil
	}
	m := &manifest{}
	p := 8
	for r := 0; r < np; r++ {
		m.rows = append(m.rows, b[p:p+24])
		p += 24
	}
	ng := int(binary.LittleEndian.Uint32(b[p:]))
	p += 4
	if p+ng*16 != len(body) {
		return nil
	}
	m.grids = decGridHashes([][]byte{body[p:]})
	return m
}

// writeManifest gathers the live state's hashes to rank 0 and writes the
// generation's manifest (collective).
func (s *Sim) writeManifest(d int, snap snapshotState) {
	defer obs.Begin(s.r.Proc(), obs.LayerApp, "manifest_write").Attr("dump", fmt.Sprint(d)).End()
	rows := s.r.Gatherv(0, topRow(snap))
	gridChunks := s.r.Gatherv(0, encGridHashes(snap.grids))
	if s.r.Rank() == 0 {
		all := encGridHashes(decGridHashes(gridChunks))
		enc := encodeManifest(s.r.Size(), rows, all)
		if s.cas != nil {
			// Castore runs replicate the integrity manifest like any other
			// named object, so a dead data server degrades it to a re-routed
			// read instead of an unverifiable generation.
			if err := s.cas.PutNamed(s.client(), manifestFile(d), enc); err != nil {
				panic(err)
			}
		} else {
			f, err := s.fs.Create(s.client(), manifestFile(d))
			if err != nil {
				panic(err)
			}
			f.WriteAt(s.client(), enc, 0)
			f.Close(s.client())
		}
	}
	s.r.Barrier()
}

// manifestCheck compares the current in-memory state (typically just read
// back from generation d) against the generation's manifest. It folds in
// this rank's damaged flag and is collective: every rank learns the global
// verdict.
func (s *Sim) manifestCheck(d int) bool {
	defer obs.Begin(s.r.Proc(), obs.LayerApp, "manifest_check").Attr("dump", fmt.Sprint(d)).End()
	now := s.snapshot()
	var raw []byte
	if s.r.Rank() == 0 {
		// The manifest read goes through MPI-IO so the retry policy's
		// deadlines apply, and absorbs an exhausted-retry failure like any
		// other read-back error: a manifest on a dead data server makes the
		// generation unverifiable (nil manifest → dirty), it must not hang
		// the restart at virtual +Inf.
		saved := s.tolerant
		s.tolerant = true
		s.tolerantIO(func() {
			if s.cas != nil {
				if b, err := s.cas.GetNamed(s.client(), manifestFile(d)); err == nil {
					raw = b
				}
			} else if f, err := mpiio.OpenIndependent(s.r, s.fs, manifestFile(d), mpiio.ModeRead, s.hints); err == nil {
				buf := make([]byte, f.Size())
				f.ReadAt(buf, 0)
				f.Close()
				raw = buf
			}
		})
		s.tolerant = saved
	}
	raw = s.r.Bcast(0, raw)
	m := decodeManifest(raw, s.r.Size())
	ok := int64(1)
	if s.damaged || m == nil {
		ok = 0
	} else {
		want := m.rows[s.r.Rank()]
		if string(topRow(now)) != string(want) {
			ok = 0
		}
	}
	gridChunks := s.r.Gatherv(0, encGridHashes(now.grids))
	if s.r.Rank() == 0 && m != nil {
		got := decGridHashes(gridChunks)
		if len(got) != len(m.grids) {
			ok = 0
		}
		for id, h := range m.grids {
			if got[id] != h {
				ok = 0
			}
		}
	}
	return s.r.AllreduceInt64(ok, mpi.OpMin) == 1
}

// scrubGeneration reads generation d back in tolerant mode and checks it
// against its manifest, preserving the live state around the read-back.
func (s *Sim) scrubGeneration(d int) bool {
	defer obs.Begin(s.r.Proc(), obs.LayerApp, fmt.Sprintf("scrub:%02d", d)).End()
	savedTop, savedOwned, savedRows := s.top, s.owned, s.localPartRows
	s.clearState()
	s.tolerant, s.damaged = true, false
	s.readRestart(d)
	s.tolerant = false
	clean := s.manifestCheck(d)
	s.damaged = false
	s.top, s.owned, s.localPartRows = savedTop, savedOwned, savedRows
	return clean
}

// scrubDumps writes every generation's manifest, scrubs it, and re-dumps
// dirty generations (synchronously, from the live state) up to MaxRedumps
// times each. A generation still dirty after that many re-dumps is left in
// place for the restart fallback to skip.
func (s *Sim) scrubDumps(snap snapshotState) {
	maxRe := s.cfg.MaxRedumps
	if maxRe <= 0 {
		maxRe = 2
	}
	for d := 0; d < s.cfg.Dumps; d++ {
		s.writeManifest(d, snap)
		for try := 0; ; try++ {
			if s.scrubGeneration(d) {
				break
			}
			if s.r.Rank() == 0 {
				s.res.ScrubFailures++
			}
			if try >= maxRe {
				break
			}
			sp := obs.Begin(s.r.Proc(), obs.LayerApp,
				fmt.Sprintf("redump:%02d.%d", d, try)).Attr("dump", fmt.Sprint(d))
			s.writeDump(d)
			s.writeManifest(d, snap)
			sp.End()
			if s.r.Rank() == 0 {
				s.res.Redumps++
			}
		}
	}
}

// restartNewestClean walks the dump generations newest-first, reading each
// back tolerantly until one matches its manifest. A generation that fails
// is counted as a fallback and skipped; if every scanned generation is
// dirty the last-read (dirty) state stays, which the final verification
// then reports as unverified.
func (s *Sim) restartNewestClean() {
	lowest := 0
	if s.cfg.Generations > 0 && s.cfg.Dumps-s.cfg.Generations > lowest {
		lowest = s.cfg.Dumps - s.cfg.Generations
	}
	for d := s.cfg.Dumps - 1; d >= lowest; d-- {
		s.clearState()
		s.tolerant, s.damaged = true, false
		s.readRestart(d)
		s.tolerant = false
		clean := s.manifestCheck(d)
		s.damaged = false
		if clean {
			return
		}
		if d > lowest && s.r.Rank() == 0 {
			s.res.RestartFallbacks++
		}
	}
	// Every retained generation is dirty: the run finishes with whatever
	// dirty state the last read left, and runOnce surfaces the typed
	// *RestartError alongside the (unverified) result.
	if s.r.Rank() == 0 {
		s.res.restartFailed = true
	}
}
