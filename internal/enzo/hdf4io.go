package enzo

import (
	"fmt"

	"repro/internal/amr"
	"repro/internal/core"
	"repro/internal/hdf4"
	"repro/internal/obs"
)

// The original ENZO I/O design (Section 2.2 / 3.1 of the paper):
// sequential HDF4 containers. Processor 0 performs all top-grid file
// access and redistributes over the network; subgrid dumps go to
// individual per-grid files written by their owners in parallel without
// communication; restart reads assign whole subgrids round-robin.

func icGridFile(id int) string { return fmt.Sprintf("ic_g%04d.hdf", id) }

func dumpTopFile(d int) string { return fmt.Sprintf("dump%02d_top.hdf", d) }

func dumpGridFile(d, id int) string { return fmt.Sprintf("dump%02d_g%04d.hdf", d, id) }

// writeGridSD writes all of a grid's arrays, in the fixed access order,
// into an HDF4 container.
func writeGridSD(sd *hdf4.SDFile, g *amr.Grid) {
	for f, name := range amr.FieldNames {
		if err := sd.WriteSDS(name, []int{g.Dims[0], g.Dims[1], g.Dims[2]},
			amr.FieldElemSize, g.Fields[f]); err != nil {
			panic(err)
		}
	}
	if g.Particles.N == 0 {
		return
	}
	for k, pa := range amr.ParticleArrays {
		if err := sd.WriteSDS(pa.Name, []int{g.Particles.N}, pa.ElemSize,
			g.Particles.Arrays[k]); err != nil {
			panic(err)
		}
	}
}

// readGridSD reads a whole grid back from an HDF4 container.
func readGridSD(sd *hdf4.SDFile, g core.GridMeta) *amr.Grid {
	grid := &amr.Grid{
		ID: g.ID, Level: g.Level, Parent: g.Parent, Dims: g.Dims,
		LeftEdge: g.LeftEdge, RightEdge: g.RightEdge,
	}
	grid.Fields = make([][]byte, len(amr.FieldNames))
	for f, name := range amr.FieldNames {
		_, data, err := sd.ReadSDS(name)
		if err != nil {
			panic(err)
		}
		grid.Fields[f] = data
	}
	if g.NParticles == 0 {
		grid.Particles = amr.NewParticleSet(0)
		return grid
	}
	ps := amr.ParticleSet{N: int(g.NParticles), Arrays: make([][]byte, len(amr.ParticleArrays))}
	for k, pa := range amr.ParticleArrays {
		_, data, err := sd.ReadSDS(pa.Name)
		if err != nil {
			panic(err)
		}
		ps.Arrays[k] = data
	}
	grid.Particles = ps
	return grid
}

func (s *Sim) hdf4WriteIC(h *amr.Hierarchy) {
	if s.r.Rank() != 0 {
		return
	}
	c := s.client()
	for _, g := range h.Grids {
		sd, err := hdf4.Create(c, s.fs, icGridFile(g.ID))
		if err != nil {
			panic(err)
		}
		writeGridSD(sd, g)
		sd.Close()
	}
}

// hdf4ReadGridPartitioned is the original read path for one grid:
// processor 0 reads each array from the container and redistributes it —
// (Block,Block,Block) sub-blocks for the baryon fields, position-owned
// rows for the particles. Collective: all ranks must call it.
func (s *Sim) hdf4ReadGridPartitioned(fname string, g core.GridMeta) *partition {
	defer obs.Begin(s.r.Proc(), obs.LayerApp, "grid_read").Attr("grid", fmt.Sprint(g.ID)).End()
	p := &partition{gridID: g.ID, sub: core.FieldSubarray(g, s.pz, s.py, s.px, s.r.Rank())}
	p.fields = make([][]byte, len(amr.FieldNames))

	var sd *hdf4.SDFile
	if s.r.Rank() == 0 {
		var err error
		sd, err = hdf4.Open(s.client(), s.fs, fname)
		if err != nil {
			panic(err)
		}
	}
	for f, name := range amr.FieldNames {
		var parts [][]byte
		if s.r.Rank() == 0 {
			_, full, err := sd.ReadSDS(name)
			if err != nil {
				panic(err)
			}
			parts = make([][]byte, s.r.Size())
			for rank := 0; rank < s.r.Size(); rank++ {
				sub := core.FieldSubarray(g, s.pz, s.py, s.px, rank)
				parts[rank] = sub.GatherSub(full)
			}
			s.r.CopyCost(int64(len(full)))
		}
		p.fields[f] = s.r.Scatterv(0, parts)
	}

	if g.NParticles == 0 {
		p.particles = amr.NewParticleSet(0)
	} else {
		// Processor 0 reads every particle array, determines each
		// particle's destination from its position, and scatters the
		// arrays one by one (the fixed access order).
		var owners []int
		var cols [][]byte
		if s.r.Rank() == 0 {
			cols = make([][]byte, len(amr.ParticleArrays))
			for k, pa := range amr.ParticleArrays {
				_, data, err := sd.ReadSDS(pa.Name)
				if err != nil {
					panic(err)
				}
				cols[k] = data
			}
			rows := rowsFromColumns(cols)
			rs := rowSize()
			owners = make([]int, int(g.NParticles))
			for i := range owners {
				owners[i] = core.OwnerOfPosition(rowPosition(rows[i*rs:(i+1)*rs]), g, s.pz, s.py, s.px)
			}
			s.r.CopyCost(int64(len(rows)))
		}
		recvCols := make([][]byte, len(amr.ParticleArrays))
		for k, pa := range amr.ParticleArrays {
			var parts [][]byte
			if s.r.Rank() == 0 {
				parts = make([][]byte, s.r.Size())
				for i, o := range owners {
					parts[o] = append(parts[o], cols[k][i*pa.ElemSize:(i+1)*pa.ElemSize]...)
				}
			}
			recvCols[k] = s.r.Scatterv(0, parts)
		}
		n := len(recvCols[0]) / amr.ParticleArrays[0].ElemSize
		p.particles = amr.ParticleSet{N: n, Arrays: recvCols}
	}
	if s.r.Rank() == 0 {
		sd.Close()
	}
	return p
}

func (s *Sim) hdf4ReadInitial() {
	s.top = s.hdf4ReadGridPartitioned(icGridFile(0), s.meta.Top())
	for _, g := range s.meta.Subgrids() {
		s.partials = append(s.partials, s.hdf4ReadGridPartitioned(icGridFile(g.ID), g))
	}
}

func (s *Sim) hdf4WriteDump(d int) {
	// Top grid: collected by processor 0, combined, and written to a
	// single file (Section 2.2).
	g := s.meta.Top()
	topSp := obs.Begin(s.r.Proc(), obs.LayerApp, "grid_write").Attr("grid", "0")
	var sd *hdf4.SDFile
	if s.r.Rank() == 0 {
		var err error
		sd, err = hdf4.Create(s.client(), s.fs, dumpTopFile(d))
		if err != nil {
			panic(err)
		}
	}
	for f, name := range amr.FieldNames {
		blocks := s.r.Gatherv(0, s.top.fields[f])
		if s.r.Rank() == 0 {
			full := make([]byte, g.Cells()*amr.FieldElemSize)
			for rank, blk := range blocks {
				core.FieldSubarray(g, s.pz, s.py, s.px, rank).ScatterSub(full, blk)
			}
			s.r.CopyCost(int64(len(full)))
			if err := sd.WriteSDS(name, []int{g.Dims[0], g.Dims[1], g.Dims[2]},
				amr.FieldElemSize, full); err != nil {
				panic(err)
			}
		}
	}
	rows := packRows(&s.top.particles)
	s.r.CopyCost(int64(len(rows)))
	gathered := s.r.GathervScratch(0, rows) // rows is a fresh pack, garbage after this call
	if s.r.Rank() == 0 {
		var all []byte
		for _, chunk := range gathered {
			all = append(all, chunk...)
		}
		if g.NParticles > 0 {
			sorted := s.sortRowsByIDLocal(all)
			cols := columnsFromRows(sorted)
			s.r.CopyCost(int64(len(sorted)))
			for k, pa := range amr.ParticleArrays {
				if err := sd.WriteSDS(pa.Name, []int{int(g.NParticles)}, pa.ElemSize, cols[k]); err != nil {
					panic(err)
				}
			}
		}
		sd.Close()
	}
	topSp.End()

	// Subgrids: every processor writes its own grids into individual
	// files, in parallel, without communication.
	for _, gm := range s.meta.Subgrids() {
		grid, mine := s.owned[gm.ID]
		if !mine {
			continue
		}
		sp := obs.Begin(s.r.Proc(), obs.LayerApp, "grid_write").Attr("grid", fmt.Sprint(gm.ID))
		sub, err := hdf4.Create(s.client(), s.fs, dumpGridFile(d, gm.ID))
		if err != nil {
			panic(err)
		}
		writeGridSD(sub, grid)
		sub.Close()
		sp.End()
	}
}

func (s *Sim) hdf4ReadRestart(d int) {
	// "The restart read is pretty much like the new simulation read,
	// except that every processor reads the subgrids in a round-robin
	// manner."
	s.top = s.hdf4ReadGridPartitioned(dumpTopFile(d), s.meta.Top())
	owners := s.restartOwners()
	for _, g := range s.meta.Subgrids() {
		if owners[g.ID] != s.r.Rank() {
			continue
		}
		sp := obs.Begin(s.r.Proc(), obs.LayerApp, "grid_read").Attr("grid", fmt.Sprint(g.ID))
		sd, err := hdf4.Open(s.client(), s.fs, dumpGridFile(d, g.ID))
		if err != nil {
			panic(err)
		}
		s.owned[g.ID] = readGridSD(sd, g)
		sd.Close()
		sp.End()
	}
}
