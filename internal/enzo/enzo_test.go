package enzo

import (
	"fmt"
	"testing"

	"repro/internal/amr"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func tinyCfg() Config {
	c := Tiny()
	return c
}

func testMachineCfg() machine.Config {
	return machine.Config{
		Name: "t", Nodes: 16, ProcsPerNode: 1,
		WireLatency: 20e-6, LinkBW: 150e6, SendOverhead: 2e-6, RecvOverhead: 2e-6,
		MemLatency: 1e-6, MemCopyBW: 800e6, ComputeRate: 1e9,
	}
}

func TestRunOnceAllBackendsAllFilesystemsVerify(t *testing.T) {
	for _, backend := range []Backend{BackendHDF4, BackendMPIIO, BackendHDF5} {
		for _, fsKind := range []string{"xfs", "gpfs", "pvfs", "local"} {
			backend, fsKind := backend, fsKind
			t.Run(fmt.Sprintf("%s-%s", backend, fsKind), func(t *testing.T) {
				res, err := RunOnce(testMachineCfg(), fsKind, 4, tinyCfg(), backend)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Verified {
					t.Fatal("restart state did not match pre-dump state")
				}
				if res.ReadTime() <= 0 || res.WriteTime() <= 0 || res.RestartTime() <= 0 {
					t.Fatalf("phases missing: %+v", res.Phases)
				}
				if res.BytesWritten <= 0 || res.BytesRead <= 0 {
					t.Fatalf("no I/O accounted: read=%d written=%d", res.BytesRead, res.BytesWritten)
				}
				if res.Grids < 2 {
					t.Fatalf("hierarchy too small: %d grids", res.Grids)
				}
			})
		}
	}
}

func TestRunOnceVariousProcCounts(t *testing.T) {
	for _, np := range []int{1, 2, 3, 5, 8} {
		np := np
		t.Run(fmt.Sprintf("np%d", np), func(t *testing.T) {
			for _, backend := range []Backend{BackendHDF4, BackendMPIIO, BackendHDF5} {
				res, err := RunOnce(testMachineCfg(), "xfs", np, tinyCfg(), backend)
				if err != nil {
					t.Fatalf("%v: %v", backend, err)
				}
				if !res.Verified {
					t.Fatalf("%v with %d procs: not verified", backend, np)
				}
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() *Result {
		res, err := RunOnce(testMachineCfg(), "gpfs", 4, tinyCfg(), BackendMPIIO)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Phases) != len(b.Phases) {
		t.Fatal("phase count differs between runs")
	}
	for i := range a.Phases {
		if a.Phases[i] != b.Phases[i] {
			t.Fatalf("phase %q: %g vs %g", a.Phases[i].Name, a.Phases[i].Seconds, b.Phases[i].Seconds)
		}
	}
	if a.BytesRead != b.BytesRead || a.BytesWritten != b.BytesWritten {
		t.Fatal("byte accounting differs between runs")
	}
}

func TestWriteVolumeMatchesHierarchy(t *testing.T) {
	// The dump must write at least the full hierarchy footprint (plus
	// metadata overheads, which are small).
	res, err := RunOnce(testMachineCfg(), "xfs", 2, tinyCfg(), BackendMPIIO)
	if err != nil {
		t.Fatal(err)
	}
	h := amr.BuildHierarchy(tinyCfg().Dims, tinyCfg().NParticles, tinyCfg().PreRefine,
		tinyCfg().Threshold, tinyCfg().Seed)
	want := h.TotalBytes()
	if res.BytesWritten < want {
		t.Fatalf("wrote %d bytes, hierarchy is %d", res.BytesWritten, want)
	}
	if res.BytesWritten > want*3/2+1<<20 {
		t.Fatalf("wrote %d bytes for a %d-byte hierarchy: too much overhead", res.BytesWritten, want)
	}
}

func TestMultipleDumps(t *testing.T) {
	cfg := tinyCfg()
	cfg.Dumps = 3
	res, err := RunOnce(testMachineCfg(), "xfs", 4, cfg, BackendMPIIO)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("multi-dump run not verified")
	}
	single, err := RunOnce(testMachineCfg(), "xfs", 4, tinyCfg(), BackendMPIIO)
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteTime() <= 2*single.WriteTime() {
		t.Fatalf("3 dumps (%.4fs) should cost ~3x one dump (%.4fs)", res.WriteTime(), single.WriteTime())
	}
}

func TestBackendByName(t *testing.T) {
	for _, name := range []string{"hdf4", "mpiio", "hdf5"} {
		b, err := BackendByName(name)
		if err != nil || b.String() != name {
			t.Fatalf("BackendByName(%q) = %v, %v", name, b, err)
		}
	}
	if _, err := BackendByName("netcdf"); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if Backend(99).String() != "unknown" {
		t.Fatal("bad String")
	}
}

func TestMakeFSUnknown(t *testing.T) {
	if _, err := MakeFS("zfs", machine.New(testMachineCfg())); err == nil {
		t.Fatal("unknown fs accepted")
	}
}

func TestResultPhaseAccessors(t *testing.T) {
	res := &Result{Phases: []Phase{{"read", 1}, {"write", 2}, {"restart", 3}}}
	if res.ReadTime() != 1 || res.WriteTime() != 2 || res.RestartTime() != 3 {
		t.Fatal("accessors wrong")
	}
	if res.IOTime() != 6 {
		t.Fatal("IOTime wrong")
	}
	if res.Phase("nope") != 0 {
		t.Fatal("missing phase should be 0")
	}
}

func TestParticleHelpersRoundTrip(t *testing.T) {
	ps := amr.NewParticleSet(10)
	for i := 0; i < 10; i++ {
		ps.SetID(i, int64(100-i))
		ps.SetPosition(i, [3]float64{float64(i) / 10, 0.5, 0.25})
	}
	rows := packRows(&ps)
	if len(rows) != 10*rowSize() {
		t.Fatalf("rows len %d", len(rows))
	}
	back := unpackRows(rows)
	for i := 0; i < 10; i++ {
		if back.ID(i) != ps.ID(i) || back.Position(i) != ps.Position(i) {
			t.Fatalf("row round trip broke particle %d", i)
		}
	}
	cols := columnsFromRows(rows)
	rows2 := rowsFromColumns(cols)
	for i := range rows {
		if rows[i] != rows2[i] {
			t.Fatal("columns round trip failed")
		}
	}
	if pos := rowPosition(rows[:rowSize()]); pos != ps.Position(0) {
		t.Fatalf("rowPosition = %v, want %v", pos, ps.Position(0))
	}
}

func TestConfigPresets(t *testing.T) {
	for _, cfg := range []Config{AMR64(), AMR128(), AMR256(), Tiny()} {
		if cfg.Dims[0] <= 0 || cfg.NParticles <= 0 || cfg.Dumps <= 0 {
			t.Fatalf("bad preset %+v", cfg)
		}
	}
	if AMR64().Dims != [3]int{64, 64, 64} || AMR256().Dims != [3]int{256, 256, 256} {
		t.Fatal("preset dims wrong")
	}
}

func TestScaledRestartAcrossProcCounts(t *testing.T) {
	// A checkpoint written by N ranks must restart correctly on M ranks:
	// the hierarchy metadata and layouts are communicator-size
	// independent. Verified with decomposition-independent content hashes.
	cases := []struct{ npWrite, npRead int }{{4, 2}, {2, 4}, {3, 5}}
	for _, backend := range []Backend{BackendHDF4, BackendMPIIO, BackendHDF5} {
		for _, c := range cases {
			backend, c := backend, c
			t.Run(fmt.Sprintf("%s-%dto%d", backend, c.npWrite, c.npRead), func(t *testing.T) {
				match, err := RunScaledRestart(testMachineCfg(), "xfs", c.npWrite, c.npRead, tinyCfg(), backend)
				if err != nil {
					t.Fatal(err)
				}
				if !match {
					t.Fatal("restart content differs from checkpoint content")
				}
			})
		}
	}
}

func TestScaledRestartRejectsLocalDisks(t *testing.T) {
	if _, err := RunScaledRestart(testMachineCfg(), "local", 4, 2, tinyCfg(), BackendMPIIO); err == nil {
		t.Fatal("scaled restart on node-local storage must be rejected")
	}
}

func TestScaledRestartDetectsCorruption(t *testing.T) {
	// The content check is not a rubber stamp: corrupt one byte of the
	// dump between checkpoint and restart and the hashes must differ.
	eng1 := sim.NewEngine()
	mach1 := machine.New(testMachineCfg())
	fs1, _ := MakeFS("xfs", mach1)
	res := &Result{}
	var before ContentHash
	mpi.NewWorld(eng1, mach1, 4, func(r *mpi.Rank) {
		s := NewSim(r, fs1, BackendMPIIO, tinyCfg(), res)
		s.setup()
		s.readInitial()
		s.evolve()
		if h := s.contentHash(); r.Rank() == 0 {
			before = h
		}
		s.writeDump(0)
	})
	if err := eng1.Run(); err != nil {
		t.Fatal(err)
	}
	files := fs1.Snapshot()
	dump := files["dump00.raw"]
	if len(dump) == 0 {
		t.Fatal("dump file missing from snapshot")
	}
	dump[len(dump)/2] ^= 0xFF // flip a byte in the middle (grid data)

	eng2 := sim.NewEngine()
	mach2 := machine.New(testMachineCfg())
	fs2, _ := MakeFS("xfs", mach2)
	fs2.Restore(files)
	var after ContentHash
	res2 := &Result{}
	mpi.NewWorld(eng2, mach2, 4, func(r *mpi.Rank) {
		s := NewSim(r, fs2, BackendMPIIO, tinyCfg(), res2)
		if err := s.loadMetaFromFS(dumpHierarchyFile(0)); err != nil {
			panic(err)
		}
		s.readRestart(0)
		if h := s.contentHash(); r.Rank() == 0 {
			after = h
		}
	})
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if before.Equal(after) {
		t.Fatal("corruption went undetected by the content hashes")
	}
}

func TestDynamicRefinementDeepensHierarchyAndVerifies(t *testing.T) {
	base := tinyCfg()
	cfg := base
	cfg.RefineCycles = 1
	for _, backend := range []Backend{BackendHDF4, BackendMPIIO, BackendHDF5} {
		backend := backend
		t.Run(backend.String(), func(t *testing.T) {
			static, err := RunOnce(testMachineCfg(), "xfs", 4, base, backend)
			if err != nil {
				t.Fatal(err)
			}
			dynamic, err := RunOnce(testMachineCfg(), "xfs", 4, cfg, backend)
			if err != nil {
				t.Fatal(err)
			}
			if !dynamic.Verified {
				t.Fatal("dynamic run failed verification")
			}
			if dynamic.Grids <= static.Grids {
				t.Fatalf("refinement created no grids: %d vs %d", dynamic.Grids, static.Grids)
			}
			if dynamic.BytesWritten <= static.BytesWritten {
				t.Fatalf("dump did not grow with the hierarchy: %d vs %d",
					dynamic.BytesWritten, static.BytesWritten)
			}
		})
	}
}

func TestDynamicRefinementScaledRestart(t *testing.T) {
	cfg := tinyCfg()
	cfg.RefineCycles = 1
	match, err := RunScaledRestart(testMachineCfg(), "xfs", 4, 3, cfg, BackendMPIIO)
	if err != nil {
		t.Fatal(err)
	}
	if !match {
		t.Fatal("dynamically refined checkpoint did not survive a scaled restart")
	}
}

func TestDumpHierarchyFileWritten(t *testing.T) {
	eng := sim.NewEngine()
	mach := machine.New(testMachineCfg())
	fs, _ := MakeFS("xfs", mach)
	res := &Result{}
	mpi.NewWorld(eng, mach, 2, func(r *mpi.Rank) {
		s := NewSim(r, fs, BackendMPIIO, tinyCfg(), res)
		s.setup()
		s.readInitial()
		s.evolve()
		s.writeDump(0)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("dump00.hierarchy") {
		t.Fatal("per-dump hierarchy file missing")
	}
}

func TestDynamicRefinementOnEveryFileSystem(t *testing.T) {
	cfg := tinyCfg()
	cfg.RefineCycles = 1
	for _, fsKind := range []string{"gpfs", "pvfs", "local"} {
		fsKind := fsKind
		t.Run(fsKind, func(t *testing.T) {
			res, err := RunOnce(testMachineCfg(), fsKind, 4, cfg, BackendMPIIO)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Verified {
				t.Fatalf("dynamic run on %s failed verification", fsKind)
			}
		})
	}
}
