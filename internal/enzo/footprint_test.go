package enzo

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/machine"
)

// TestFootprintGuardRejectsAMR512 pins the guard's contract: AMR512 under
// the default budget must fail fast with a *FootprintError (before any
// grid data is allocated), a negative budget must lift the guard, and the
// error text must point the user at the -membudget escape hatch.
func TestFootprintGuardRejectsAMR512(t *testing.T) {
	cfg := AMR512()
	err := cfg.checkFootprint(1024)
	var fe *FootprintError
	if !errors.As(err, &fe) {
		t.Fatalf("checkFootprint(AMR512) = %v, want *FootprintError", err)
	}
	if fe.Problem != "AMR512" || fe.Estimate <= fe.Budget {
		t.Fatalf("bad FootprintError fields: %+v", fe)
	}
	if !strings.Contains(fe.Error(), "-membudget") {
		t.Fatalf("error does not mention the -membudget escape hatch: %v", fe)
	}

	cfg.MemBudget = -1
	if err := cfg.checkFootprint(1024); err != nil {
		t.Fatalf("negative MemBudget should disable the guard, got %v", err)
	}
	// An explicit budget above the estimate also admits the run.
	cfg.MemBudget = cfg.EstimateFootprint(1024) + 1
	if err := cfg.checkFootprint(1024); err != nil {
		t.Fatalf("budget above estimate should pass, got %v", err)
	}
}

// TestFootprintGuardAdmitsDefaultProblems: every problem the standard
// sweeps run must clear the default budget at every swept rank count.
func TestFootprintGuardAdmitsDefaultProblems(t *testing.T) {
	for _, cfg := range []Config{Tiny(), AMR64(), AMR128(), AMR256()} {
		for _, np := range []int{1, 8, 64, 256} {
			if err := cfg.checkFootprint(np); err != nil {
				t.Errorf("%s np=%d rejected by default budget: %v", cfg.Problem, np, err)
			}
		}
	}
}

// TestFootprintGuardTripsAtRunOnce: the guard must fire from RunOnce
// itself, before the simulation starts, so an over-budget run never
// begins allocating grids.
func TestFootprintGuardTripsAtRunOnce(t *testing.T) {
	cfg := AMR512()
	_, err := RunOnce(machine.Cluster1024(), "pvfs", 8, cfg, BackendMPIIO)
	var fe *FootprintError
	if !errors.As(err, &fe) {
		t.Fatalf("RunOnce(AMR512) = %v, want *FootprintError", err)
	}
}
