// Package enzo reproduces the ENZO cosmology application's simulation flow
// and its three I/O implementations from the paper:
//
//   - BackendHDF4: the original design — sequential HDF4 containers, all
//     top-grid I/O funnelled through processor 0, subgrids in individual
//     files written in parallel without communication;
//   - BackendMPIIO: the paper's direct MPI-IO port — collective two-phase
//     I/O for the regularly partitioned baryon fields, block-wise
//     independent I/O plus redistribution (and a parallel sort on writes)
//     for the irregular particle arrays, and all grids in a single shared
//     file at offsets computed from the replicated hierarchy metadata;
//   - BackendHDF5: the parallel HDF5 port — the same access strategy
//     expressed through hyperslab selections, paying HDF5's dataset
//     create/close synchronization, interleaved metadata and hyperslab
//     packing costs.
//
// A run performs the full measured cycle: write initial conditions
// (untimed setup), read the initial grids, evolve/load-balance, dump
// checkpoints, then restart-read the dump and verify byte-for-byte that
// the state survived the round trip.
package enzo

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/amr"
	"repro/internal/castore"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/hdf5"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// Backend selects an I/O implementation.
type Backend int

// The three I/O implementations compared in the paper, plus a variant of
// the MPI-IO port that routes even the single-owner subgrid arrays
// through MPI_File_write_all with collective buffering forced
// (romio_cb_write=enable, ROMIO's default of the era). The variant
// demonstrates how per-array collective writes serialize the dump — the
// communication overhead the paper measures on the Ethernet cluster.
const (
	BackendHDF4 Backend = iota
	BackendMPIIO
	BackendHDF5
	BackendMPIIOCB
)

func (b Backend) String() string {
	switch b {
	case BackendHDF4:
		return "hdf4"
	case BackendMPIIO:
		return "mpiio"
	case BackendHDF5:
		return "hdf5"
	case BackendMPIIOCB:
		return "mpiio-cb"
	}
	return "unknown"
}

// BackendByName parses a backend name.
func BackendByName(s string) (Backend, error) {
	switch s {
	case "hdf4":
		return BackendHDF4, nil
	case "mpiio":
		return BackendMPIIO, nil
	case "hdf5":
		return BackendHDF5, nil
	case "mpiio-cb":
		return BackendMPIIOCB, nil
	}
	return 0, fmt.Errorf("enzo: unknown backend %q", s)
}

// Config defines a problem instance.
type Config struct {
	Problem      string  // display name (AMR64, AMR128, ...)
	Dims         [3]int  // root grid cells
	NParticles   int     // particles in the root grid at start
	PreRefine    int     // pre-refined subgrid levels in the initial data
	Threshold    float64 // refinement density threshold
	Seed         int64
	Dumps        int   // checkpoint dumps per run
	FlopsPerCell int64 // evolution work per cell per cycle
	// RefineCycles adds this many dynamic refinement passes during the
	// evolution between the initial read and the dumps: the hierarchy
	// deepens, IDs and metadata are exchanged, and the dump layout grows
	// (Figure 2's evolution loop). 0 keeps the pre-refined hierarchy.
	RefineCycles int

	// AsyncIO enables the write-behind dump pipeline: each checkpoint's
	// writes are issued through the nonblocking/split-collective MPI-IO
	// interfaces, the rank computes the next evolution step while the
	// devices drain, and the dump settles before the following one starts.
	// The HDF4 backend ignores it and stays the synchronous baseline.
	// Restart files are bit-identical to the synchronous path.
	AsyncIO bool

	// CBNodes overrides the ROMIO cb_nodes hint (number of collective
	// aggregators); 0 keeps the host-based default of one aggregator per
	// physical node.
	CBNodes int

	// CBBufferSize and SieveBufferSize override the matching MPI-IO hints
	// (cb_buffer_size, ind_rd_buffer_size) in bytes; 0 keeps the ROMIO
	// defaults. DataSieving is a tri-state override for the data sieving
	// hint: 0 keeps the default (enabled), 1 forces it on, -1 forces it
	// off. The autotuner writes its chosen hint vector through these
	// fields, so a tuned Config is self-contained and replayable.
	CBBufferSize    int64
	SieveBufferSize int64
	DataSieving     int

	// AutoTune tunes the MPI-IO hint vector before the run: a short
	// deterministic probe (the same problem at reduced depth, one dump
	// plus one restart read) runs first, its diagnosis report feeds the
	// detector registry, and the resulting hint deltas are applied to
	// this configuration (diag.Suggest is the single source of truth for
	// the mapping). Requires the diag package in the program — it
	// registers the tuner via RegisterAutoTuner; RunOnce fails otherwise.
	AutoTune bool

	// Codec enables transparent compression of the regular baryon field
	// arrays in the MPI-IO and HDF5 paths ("" or "none" = off; see
	// compress.Names for the menu). Particle arrays stay raw — they are
	// high-entropy and their block-range accesses need fixed addressing —
	// and the HDF4 backend stays the uncompressed baseline.
	Codec string
	// CompressBps/DecompressBps override the codec CPU cost model (bytes
	// per second charged to the calling rank's virtual clock); 0 keeps
	// compress.DefaultCostModel.
	CompressBps   float64
	DecompressBps float64

	// ScrubOnDump enables checkpoint integrity protection: after the dump
	// phase each generation is read back and compared against its manifest
	// of content hashes (dumpNN.sum); a generation that fails the scrub is
	// re-dumped, and the restart falls back to the newest generation whose
	// manifest check passes. Off (the default), the run is bit-identical
	// to a build without the feature.
	ScrubOnDump bool
	// Generations bounds how many generations the restart fallback scans,
	// newest first (0 = all dumps). Only meaningful with ScrubOnDump.
	Generations int
	// MaxRedumps bounds the re-dump attempts per scrubbed generation
	// (0 = default of 2). Only meaningful with ScrubOnDump.
	MaxRedumps int

	// IORetry, when Enabled, is passed to the MPI-IO layer as its
	// per-request timeout/backoff/retry policy (see mpiio.RetryPolicy).
	IORetry mpiio.RetryPolicy

	// CAStore routes checkpoint dumps and restarts through the
	// content-addressed chunk store (internal/castore): grid arrays are
	// split into content-defined chunks, deduplicated against the retained
	// generations (a chunk already stored within the last Generations dumps
	// is referenced, not rewritten), and each new chunk is replicated on
	// Replicas data servers. The HDF4 backend ignores it and stays the
	// unmodified baseline.
	CAStore bool
	// Replicas is the number of data servers each castore chunk and
	// manifest is placed on; normalize clamps it into [1, NumDataServers].
	// Only meaningful with CAStore.
	Replicas int

	// MemBudget caps the estimated host-memory footprint of the run (the
	// simulator stores real grid, particle, and dump bytes, so a too-large
	// problem OOMs the host rather than merely running slowly). 0 applies
	// DefaultMemBudget; a negative value disables the guard. RunOnce fails
	// fast with a *FootprintError when EstimateFootprint exceeds the
	// budget.
	MemBudget int64
}

// DefaultMemBudget is the footprint cap applied when Config.MemBudget is
// zero: large enough for every problem up to AMR256 at any rank count,
// small enough to stop an accidental AMR512 run before it OOMs the host.
const DefaultMemBudget int64 = 16 << 30

// FootprintError reports a run rejected by the memory-footprint guard.
type FootprintError struct {
	Problem  string
	Estimate int64 // bytes, from EstimateFootprint
	Budget   int64 // bytes
}

func (e *FootprintError) Error() string {
	return fmt.Sprintf("enzo: %s needs an estimated %d MiB of host memory, over the %d MiB budget; raise Config.MemBudget (-membudget) to run it",
		e.Problem, e.Estimate>>20, e.Budget>>20)
}

// EstimateFootprint returns a structure-only estimate of the peak host
// bytes a run materializes, before any grid data is generated. It counts
// the live hierarchy (root fields and particles, with each pre-refined
// level adding a comparable share of refined-region data), the dump bytes
// retained by the in-memory file store, and the transient pack/exchange
// buffers of the I/O phases — deliberately rounded up, since the guard's
// job is to refuse runs that would OOM, not to meter ones that fit.
func (c Config) EstimateFootprint(nprocs int) int64 {
	cells := int64(c.Dims[0]) * int64(c.Dims[1]) * int64(c.Dims[2])
	fields := cells * amr.FieldElemSize * int64(len(amr.FieldNames))
	particles := int64(c.NParticles) * amr.BytesPerParticle()
	base := fields + particles
	// Each pre-refined or dynamically refined level adds subgrids covering
	// the over-threshold region; half the root volume per level is an
	// upper-end share for these clustered problems.
	levels := int64(c.PreRefine + c.RefineCycles)
	live := base + base*levels/2
	// Live state, the newest dump in the byte store (every generation
	// beyond the first replaces the previous file set), a restart read-back
	// copy, and exchange/pack transients on top.
	est := 3*live + live/2
	if c.ScrubOnDump || c.CAStore {
		est += live // retained verification snapshot / chunk index
	}
	_ = nprocs // per-rank overheads are dwarfed by the data bytes
	return est
}

// checkFootprint applies the budget in Config.MemBudget (0 = default,
// negative = unlimited).
func (c Config) checkFootprint(nprocs int) error {
	budget := c.MemBudget
	if budget < 0 {
		return nil
	}
	if budget == 0 {
		budget = DefaultMemBudget
	}
	if est := c.EstimateFootprint(nprocs); est > budget {
		return &FootprintError{Problem: c.Problem, Estimate: est, Budget: budget}
	}
	return nil
}

// normalize clamps nonsensical configuration values into usable ones, the
// way (*mpiio.Hints).normalize does for hint values, instead of letting
// them silently misbehave downstream. nsrv is the volume's independent
// data-server count (0 when the capability is absent; the replica count
// then keeps only its lower clamp and the store degrades to one copy).
func (c *Config) normalize(nsrv int) {
	if c.Generations < 1 {
		c.Generations = 0 // 0 = scan all dumps / unlimited dedup retention
	}
	if c.MaxRedumps < 0 {
		c.MaxRedumps = 0 // 0 = the default re-dump budget
	}
	if c.Replicas < 1 {
		c.Replicas = 1
	}
	if nsrv > 0 && c.Replicas > nsrv {
		c.Replicas = nsrv
	}
}

// CostModel resolves the run's codec CPU cost model.
func (c Config) CostModel() compress.CostModel {
	m := compress.DefaultCostModel()
	if c.CompressBps != 0 {
		m.CompressBps = c.CompressBps
	}
	if c.DecompressBps != 0 {
		m.DecompressBps = c.DecompressBps
	}
	return m
}

// AMR64 is the paper's smallest problem: a 64^3 root grid.
func AMR64() Config {
	return Config{Problem: "AMR64", Dims: [3]int{64, 64, 64}, NParticles: 64 * 64 * 64 / 2,
		PreRefine: 2, Threshold: 2.0, Seed: 1789, Dumps: 1, FlopsPerCell: 40}
}

// AMR128 is the 128^3 problem.
func AMR128() Config {
	return Config{Problem: "AMR128", Dims: [3]int{128, 128, 128}, NParticles: 128 * 128 * 128 / 2,
		PreRefine: 2, Threshold: 2.0, Seed: 1789, Dumps: 1, FlopsPerCell: 40}
}

// AMR256 is the 256^3 problem (used for the Table 1 accounting; running it
// end-to-end is possible but slow).
func AMR256() Config {
	return Config{Problem: "AMR256", Dims: [3]int{256, 256, 256}, NParticles: 256 * 256 * 256 / 2,
		PreRefine: 2, Threshold: 2.0, Seed: 1789, Dumps: 1, FlopsPerCell: 40}
}

// AMR512 is the 512^3 problem for the opt-in np=1024 scale runs. Its
// in-memory state is tens of gigabytes (the simulator stores real dump
// bytes), so runs are gated by the memory-footprint guard: callers must
// raise the budget explicitly (-membudget) to run it.
func AMR512() Config {
	return Config{Problem: "AMR512", Dims: [3]int{512, 512, 512}, NParticles: 512 * 512 * 512 / 2,
		PreRefine: 2, Threshold: 2.0, Seed: 1789, Dumps: 1, FlopsPerCell: 40}
}

// Tiny is a small problem for tests and the quickstart example.
func Tiny() Config {
	return Config{Problem: "Tiny", Dims: [3]int{16, 16, 16}, NParticles: 800,
		PreRefine: 2, Threshold: 2.0, Seed: 1789, Dumps: 1, FlopsPerCell: 40}
}

// Phase is one timed region of the run.
type Phase struct {
	Name    string
	Seconds float64
}

// Result is the outcome of one simulated run, filled in by rank 0.
type Result struct {
	Problem string
	Backend Backend
	FS      string
	Procs   int
	Codec   string // "none" when compression is off

	Phases []Phase

	// BytesRead/BytesWritten cover the measured phases only (setup IC
	// writes are excluded).
	BytesRead    int64
	BytesWritten int64

	// Verified reports that the restart state matched the pre-dump state
	// byte-for-byte (fields) and as a multiset (particles).
	Verified bool

	// Grids is the hierarchy size (root + subgrids).
	Grids int

	// Makespan is the run's total virtual time (engine max clock),
	// including the untimed setup.
	Makespan float64

	// Async dump accounting (AsyncIO runs only; both zero otherwise).
	// ExposedWrite is dump wall-time the ranks actually waited on I/O
	// (issue + drain, max across ranks, summed over dumps); HiddenWrite is
	// device time that ran under the overlapped compute. The "write" phase
	// of an async run additionally contains the overlap compute itself.
	ExposedWrite float64
	HiddenWrite  float64

	// Async restart-read accounting (AsyncIO runs only; both zero
	// otherwise). ExposedRead is restart wall-time the ranks spent waiting
	// for deferred reads to settle (max across ranks, like the write
	// split); HiddenRead is device read time that completed underneath the
	// pipeline's decode/scatter/redistribution work.
	ExposedRead float64
	HiddenRead  float64

	// Fault-tolerance accounting (ScrubOnDump runs only; all zero
	// otherwise). ScrubFailures counts generations that failed a read-back
	// scrub (including after re-dumps); Redumps counts re-dump attempts;
	// RestartFallbacks counts dirty generations the restart skipped before
	// finding a clean one.
	ScrubFailures    int
	Redumps          int
	RestartFallbacks int

	// Content-addressed store accounting (CAStore runs only; all zero
	// otherwise), summed across ranks. Logical bytes are the raw bytes the
	// dump presented to the store; physical bytes are the payload bytes
	// actually written, summed over replicas; deduped bytes are raw bytes
	// elided by cross-generation dedup hits. CASFailovers counts chunk and
	// manifest reads rerouted off a failed replica.
	CASChunkPuts     int64
	CASChunkHits     int64
	CASLogicalBytes  int64
	CASPhysicalBytes int64
	CASDedupedBytes  int64
	CASFailovers     int64

	// Events is the number of scheduler dispatches the run took — a
	// wall-clock cost proxy for the simulator itself (virtual results are
	// unaffected by it).
	Events int64

	// restartFailed records that no retained generation passed its
	// manifest check; runOnce turns it into a typed *RestartError.
	restartFailed bool
}

// RestartError reports that a ScrubOnDump restart found no retained dump
// generation whose read-back matched its manifest. The run itself
// completed — RunOnce returns the populated Result alongside this error,
// so the timing and fault accounting stay usable — but the restored state
// is not trustworthy (Result.Verified is false).
type RestartError struct {
	Dumps       int // dump generations the run wrote
	Generations int // retention bound the fallback scanned (0 = all)
	Fallbacks   int // dirty generations skipped before giving up
}

func (e *RestartError) Error() string {
	return fmt.Sprintf("enzo: restart found no clean generation among %d dump(s) (retention %d, %d fallback(s))",
		e.Dumps, e.Generations, e.Fallbacks)
}

// HiddenFraction is the share of dump I/O wall-time hidden behind compute:
// hidden / (hidden + exposed), or 0 when no dump accounting exists.
func (res *Result) HiddenFraction() float64 {
	if tot := res.HiddenWrite + res.ExposedWrite; tot > 0 {
		return res.HiddenWrite / tot
	}
	return 0
}

// Phase returns a named phase duration (0 if absent).
func (res *Result) Phase(name string) float64 {
	for _, p := range res.Phases {
		if p.Name == name {
			return p.Seconds
		}
	}
	return 0
}

// ReadTime is the initial grid read phase.
func (res *Result) ReadTime() float64 { return res.Phase("read") }

// WriteTime is the checkpoint dump phase (sum over dumps).
func (res *Result) WriteTime() float64 { return res.Phase("write") }

// RestartTime is the restart read phase.
func (res *Result) RestartTime() float64 { return res.Phase("restart") }

// IOTime is read + write + restart.
func (res *Result) IOTime() float64 {
	return res.ReadTime() + res.WriteTime() + res.RestartTime()
}

// partition is the rank-local piece of one block-partitioned grid: the
// (Block,Block,Block) sub-block of every baryon field plus the particles
// whose positions fall in this rank's sub-domain.
type partition struct {
	gridID    int
	sub       mpi.Subarray
	fields    [][]byte
	particles amr.ParticleSet
}

// Sim is the per-rank simulation state.
type Sim struct {
	r       *mpi.Rank
	fs      pfs.FileSystem
	backend Backend
	hints   mpiio.Hints
	cfg     Config

	meta   *core.HierarchyMeta
	layout *core.Layout

	pz, py, px int

	top      *partition
	partials []*partition      // initial subgrid partitions, index gridID-1
	owned    map[int]*amr.Grid // wholly owned subgrids after load balance

	// dumpOwners records which rank holds each subgrid at dump time (the
	// consolidation assignment, extended by refinement); node-local
	// restarts must follow it exactly.
	dumpOwners []int

	// local-disk mode: a node can only read what it wrote.
	localMode     bool
	localPartRows [2]int64         // top-grid particle rows written at the last dump
	localICRows   map[int][2]int64 // per-grid particle rows staged at setup

	// codec is non-nil when transparent field compression is on; zcost is
	// the CPU cost model charged per compress/decompress.
	codec compress.Codec
	zcost compress.CostModel

	// cas is non-nil when checkpoints route through the content-addressed
	// chunk store (Config.CAStore; see casio.go).
	cas *castore.Store

	// pend, when non-nil, redirects dump writes through the write-behind
	// interfaces (see async.go); nil keeps every write blocking.
	pend *pendingDump

	// rpend, when non-nil, redirects restart reads through the read-ahead
	// interfaces (see asyncread.go); nil keeps every read blocking.
	rpend *pendingRead

	// tolerant turns read-path integrity failures (codec CRC mismatches,
	// unreadable directories) into a damaged flag instead of a panic, so a
	// scrub or fallback restart can reject the generation and move on;
	// damaged records that at least one such failure happened on this rank
	// since the last scrub began.
	tolerant bool
	damaged  bool

	res *Result
}

// compressed reports whether this run compresses field arrays.
func (s *Sim) compressed() bool { return s.codec != nil }

// recordCodecBytes forwards logical/physical byte accounting to the file
// system stack when an instrumentation wrapper wants it.
func (s *Sim) recordCodecBytes(file string, write bool, logical, physical int64) {
	if cr, ok := s.fs.(pfs.CodecReporter); ok {
		cr.RecordCodecBytes(file, write, logical, physical)
	}
}

// h5cfg is the HDF5 library configuration for file fname: compressed runs
// wire the codec cost model and route per-dataset codec accounting into
// the file-system stack under the file's name.
func (s *Sim) h5cfg(fname string) hdf5.Config {
	c := hdf5.DefaultConfig()
	if s.compressed() {
		c.Cost = s.zcost
		c.OnCodec = func(write bool, logical, physical int64) {
			s.recordCodecBytes(fname, write, logical, physical)
		}
	}
	return c
}

// squeeze/expand run the codec on the calling rank's clock.
func (s *Sim) squeeze(raw []byte) []byte {
	return compress.Squeeze(s.r.Proc(), s.codec, s.zcost, raw)
}

func (s *Sim) expand(blob []byte) []byte {
	raw, err := compress.Expand(s.r.Proc(), s.zcost, blob)
	if s.tolerate(err) {
		return nil
	}
	return raw
}

// tolerate reports whether err was absorbed by tolerant-read mode (marking
// this rank's state damaged). Outside tolerant mode a non-nil err panics,
// preserving the strict behaviour of the normal read paths.
func (s *Sim) tolerate(err error) bool {
	if err == nil {
		return false
	}
	if s.tolerant {
		s.damaged = true
		return true
	}
	panic(err)
}

// tolerantIO runs fn, absorbing an exhausted-retry *mpiio.IOError panic
// when tolerant mode is on: the rank marks its state damaged and reports
// false instead of crashing the engine, so a scrub or generation-fallback
// restart can reject the generation and move on — a dead data server
// during a tolerant read-back behaves like any other integrity failure.
// MPI-IO calls have no error return (matching the real API), so the typed
// error arrives as a panic; outside tolerant mode it propagates unchanged.
func (s *Sim) tolerantIO(fn func()) (ok bool) {
	if !s.tolerant {
		fn()
		return true
	}
	ok = true
	mark := obs.Mark(s.r.Proc())
	defer func() {
		if r := recover(); r != nil {
			if _, isIO := r.(*mpiio.IOError); isIO {
				// The panic skipped the End of every span opened under fn;
				// unwind so tracing survives the absorbed failure.
				obs.Unwind(s.r.Proc(), mark)
				s.damaged = true
				ok = false
				return
			}
			panic(r)
		}
	}()
	fn()
	return ok
}

// client returns this rank's file-system client identity.
func (s *Sim) client() pfs.Client {
	return pfs.Client{Proc: s.r.Proc(), Node: s.r.Node()}
}

// timed runs f between barriers and accumulates the maximum duration
// across ranks into the named phase on rank 0.
func (s *Sim) timed(name string, f func()) {
	s.r.Barrier()
	t0 := s.r.Now()
	sp := obs.Begin(s.r.Proc(), obs.LayerApp, "phase:"+name)
	f()
	sp.End()
	s.r.Barrier()
	dt := s.r.AllreduceFloat64(s.r.Now()-t0, mpi.OpMax)
	if s.r.Rank() == 0 {
		for i := range s.res.Phases {
			if s.res.Phases[i].Name == name {
				s.res.Phases[i].Seconds += dt
				return
			}
		}
		s.res.Phases = append(s.res.Phases, Phase{Name: name, Seconds: dt})
	}
}

// RunOnce executes the complete experiment for one configuration and
// returns the timing result. It builds a fresh machine, file system and
// world, so repeated calls are independent and deterministic.
func RunOnce(machCfg machine.Config, fsKind string, nprocs int, cfg Config, backend Backend) (*Result, error) {
	return RunOnceWrapped(machCfg, fsKind, nprocs, cfg, backend, nil)
}

// RunOnceWrapped is RunOnce with an optional file-system wrapper applied
// before the run — used to interpose instrumentation such as the iotrace
// recorder without changing the simulation.
func RunOnceWrapped(machCfg machine.Config, fsKind string, nprocs int, cfg Config,
	backend Backend, wrap func(pfs.FileSystem) pfs.FileSystem) (*Result, error) {
	return runOnce(machCfg, fsKind, nprocs, cfg, backend, wrap, nil)
}

// RunOnceTraced is RunOnce with a stack-wide tracer attached: every rank's
// spans (application phases, HDF, MPI-IO, MPI, file system), the
// Darshan-style per-rank counters and the server queue events all land in
// tr. Tracing only reads the virtual clock, so the run's timings are
// bit-identical to an untraced run.
func RunOnceTraced(machCfg machine.Config, fsKind string, nprocs int, cfg Config,
	backend Backend, tr *obs.Tracer) (*Result, error) {
	return runOnce(machCfg, fsKind, nprocs, cfg, backend, nil, tr)
}

// RunOnceWrappedTraced combines RunOnceWrapped and RunOnceTraced: the
// wrapper (fault injector, recorder) sees the bare file system, and the
// tracer instruments the wrapped stack — diagnosis of fault-injected runs
// needs both.
func RunOnceWrappedTraced(machCfg machine.Config, fsKind string, nprocs int, cfg Config,
	backend Backend, wrap func(pfs.FileSystem) pfs.FileSystem, tr *obs.Tracer) (*Result, error) {
	return runOnce(machCfg, fsKind, nprocs, cfg, backend, wrap, tr)
}

// autoTuner is the probe-based configuration tuner RunOnce consults when
// Config.AutoTune is set. The diagnosis layer owns the implementation but
// cannot be imported from here (it sits above this package), so it
// registers itself via RegisterAutoTuner in an init.
var autoTuner func(machine.Config, string, int, Config, Backend) (Config, error)

// RegisterAutoTuner installs the probe-based configuration tuner that
// Config.AutoTune dispatches to. The diag package registers its tuner on
// import; applications opt in per run with Config.AutoTune.
func RegisterAutoTuner(fn func(machine.Config, string, int, Config, Backend) (Config, error)) {
	autoTuner = fn
}

func runOnce(machCfg machine.Config, fsKind string, nprocs int, cfg Config,
	backend Backend, wrap func(pfs.FileSystem) pfs.FileSystem, tr *obs.Tracer) (*Result, error) {
	if cfg.AutoTune {
		if autoTuner == nil {
			return nil, fmt.Errorf("enzo: Config.AutoTune needs the autotuner registered (import repro/internal/diag)")
		}
		tuned, err := autoTuner(machCfg, fsKind, nprocs, cfg, backend)
		if err != nil {
			return nil, fmt.Errorf("enzo: autotune probe failed: %w", err)
		}
		cfg = tuned
		cfg.AutoTune = false // the probe ran; the tuned run must not re-probe
	}
	eng := sim.NewEngine()
	if _, err := compress.Resolve(cfg.Codec); err != nil {
		return nil, err
	}
	if err := cfg.checkFootprint(nprocs); err != nil {
		return nil, err
	}
	mach := machine.New(machCfg)
	fs, err := MakeFS(fsKind, mach)
	if err != nil {
		return nil, err
	}
	if tr != nil {
		// Record geometry from the bare model: wrappers (fault injectors,
		// recorders) may hide the capability interfaces.
		fi := obs.FSInfo{Name: fs.Name()}
		if sv, ok := fs.(pfs.StripedVolume); ok {
			fi.DataServers = sv.NumDataServers()
			fi.StripeUnit = sv.StripeUnit()
		}
		tr.SetFSInfo(fi)
	}
	if wrap != nil {
		fs = wrap(fs)
	}
	if tr != nil {
		fs = obs.WrapFS(fs, tr)
		if so, ok := fs.(pfs.ServeObservable); ok {
			so.SetServeObserver(tr)
		}
		mach.SetServeObserver(tr)
	}
	codecName := "none"
	if compress.Active(cfg.Codec) {
		codecName = cfg.Codec
	}
	res := &Result{Problem: cfg.Problem, Backend: backend, FS: fsKind, Procs: nprocs, Codec: codecName}
	mpi.NewWorld(eng, mach, nprocs, func(r *mpi.Rank) {
		if tr != nil {
			tr.Attach(r.Proc(), r.Rank())
		}
		s := NewSim(r, fs, backend, cfg, res)
		s.Run()
	})
	if err := eng.Run(); err != nil {
		return nil, err
	}
	res.Makespan = eng.MaxTime()
	res.Events = eng.Events()
	if res.restartFailed {
		return res, &RestartError{
			Dumps: cfg.Dumps, Generations: cfg.Generations,
			Fallbacks: res.RestartFallbacks,
		}
	}
	return res, nil
}

// dataServers returns the volume's independent data-server count (0 when
// the capability is absent).
func dataServers(fs pfs.FileSystem) int {
	if rv, ok := fs.(pfs.ReplicaVolume); ok {
		return rv.NumDataServers()
	}
	return 0
}

// MakeFS builds a file system model by name: xfs, gpfs, pvfs or local.
func MakeFS(kind string, mach *machine.Machine) (pfs.FileSystem, error) {
	switch kind {
	case "xfs":
		return pfs.NewXFS(mach, pfs.DefaultXFS()), nil
	case "gpfs":
		return pfs.NewGPFS(mach, pfs.DefaultGPFS()), nil
	case "pvfs":
		return pfs.NewPVFS(mach, pfs.DefaultPVFS()), nil
	case "local":
		return pfs.NewLocalFS(mach, pfs.DefaultLocal()), nil
	}
	return nil, fmt.Errorf("enzo: unknown file system %q", kind)
}

// NewSim builds the per-rank state. hints follow ROMIO defaults, with
// cb_nodes set to one aggregator per physical node (ROMIO's host-based
// default).
func NewSim(r *mpi.Rank, fs pfs.FileSystem, backend Backend, cfg Config, res *Result) *Sim {
	hints := mpiio.DefaultHints()
	nodes := map[int]bool{}
	for i := 0; i < r.Size(); i++ {
		nodes[r.World().Node(i)] = true
	}
	hints.CBNodes = len(nodes)
	if cfg.CBNodes > 0 {
		hints.CBNodes = cfg.CBNodes
	}
	if cfg.CBBufferSize > 0 {
		hints.CBBufferSize = cfg.CBBufferSize
	}
	if cfg.SieveBufferSize > 0 {
		hints.DSBufferSize = cfg.SieveBufferSize
	}
	switch {
	case cfg.DataSieving > 0:
		hints.DataSieving = true
	case cfg.DataSieving < 0:
		hints.DataSieving = false
	}
	if backend == BackendMPIIOCB {
		hints.CBForce = true
	}
	if cfg.IORetry.Enabled {
		hints.Retry = cfg.IORetry
	}
	pz, py, px := mpi.ProcGrid3D(r.Size())
	codec, err := compress.Resolve(cfg.Codec)
	if err != nil {
		panic(err) // runOnce validates; direct NewSim callers get the panic
	}
	s := &Sim{
		r: r, fs: fs, backend: backend, hints: hints, cfg: cfg,
		pz: pz, py: py, px: px,
		owned:     make(map[int]*amr.Grid),
		localMode: fs.Name() == "local",
		res:       res,
	}
	if backend != BackendHDF4 { // HDF4 stays the uncompressed baseline
		s.codec = codec
		s.zcost = cfg.CostModel()
	}
	s.cfg.normalize(dataServers(fs))
	if s.cfg.CAStore && backend != BackendHDF4 {
		opt := castore.Options{
			Rank:     r.Rank(),
			Replicas: s.cfg.Replicas,
			Retain:   s.cfg.Generations, // 0 = unlimited, matching the fallback scan
		}
		if s.cfg.IORetry.Enabled && s.cfg.IORetry.Timeout > 0 {
			// Compose with the retry policy: its per-request deadline also
			// bounds each replica read attempt.
			opt.ReadTimeout = s.cfg.IORetry.Timeout
		}
		s.cas = castore.New(fs, opt)
		// Compose with AsyncIO: while a dump is pending, chunk-write
		// completions defer into it and settle at the dump's drain.
		s.cas.SetDeferSink(func(end float64) bool {
			if s.pend == nil {
				return false
			}
			s.pend.note(end)
			return true
		})
	}
	return s
}

// Run performs the whole measured flow.
func (s *Sim) Run() {
	s.setup()
	statsBefore := s.fs.Stats()

	s.timed("read", s.readInitial)
	s.timed("evolve", s.evolve)

	snap := s.snapshot()

	if s.asyncDumps() {
		s.timed("write", func() {
			for d := 0; d < s.cfg.Dumps; d++ {
				s.writeDumpAsync(d)
			}
		})
	} else {
		s.timed("write", func() {
			for d := 0; d < s.cfg.Dumps; d++ {
				s.writeDump(d)
			}
		})
	}

	if s.cfg.ScrubOnDump {
		s.timed("scrub", func() { s.scrubDumps(snap) })
	}

	s.clearState()
	s.timed("restart", func() {
		if s.cfg.ScrubOnDump {
			s.restartNewestClean()
		} else {
			s.readRestart(s.cfg.Dumps - 1)
		}
	})

	verified := s.verify(snap)
	statsAfter := s.fs.Stats()
	if s.r.Rank() == 0 {
		s.res.Verified = verified
		s.res.BytesRead = statsAfter.BytesRead - statsBefore.BytesRead
		s.res.BytesWritten = statsAfter.BytesWritten - statsBefore.BytesWritten
		s.res.Grids = len(s.meta.Grids)
	}
	if s.cas != nil {
		st := s.cas.Stats()
		puts := s.r.AllreduceInt64(st.ChunkPuts, mpi.OpSum)
		hits := s.r.AllreduceInt64(st.ChunkHits, mpi.OpSum)
		logical := s.r.AllreduceInt64(st.LogicalBytes, mpi.OpSum)
		physical := s.r.AllreduceInt64(st.PhysicalBytes, mpi.OpSum)
		deduped := s.r.AllreduceInt64(st.DedupedBytes, mpi.OpSum)
		failovers := s.r.AllreduceInt64(st.Failovers, mpi.OpSum)
		if s.r.Rank() == 0 {
			s.res.CASChunkPuts = puts
			s.res.CASChunkHits = hits
			s.res.CASLogicalBytes = logical
			s.res.CASPhysicalBytes = physical
			s.res.CASDedupedBytes = deduped
			s.res.CASFailovers = failovers
		}
	}
}

// hierCache memoizes built hierarchies across runs: initial conditions are
// deterministic in the Config, immutable once built, and expensive for the
// large problems (AMR128 takes seconds and half a gigabyte to generate).
var hierCache sync.Map

func hierarchyFor(cfg Config) *amr.Hierarchy {
	key := fmt.Sprintf("%v|%d|%d|%g|%d", cfg.Dims, cfg.NParticles, cfg.PreRefine, cfg.Threshold, cfg.Seed)
	if v, ok := hierCache.Load(key); ok {
		return v.(*amr.Hierarchy)
	}
	h := amr.BuildHierarchy(cfg.Dims, cfg.NParticles, cfg.PreRefine, cfg.Threshold, cfg.Seed)
	hierCache.Store(key, h)
	return h
}

// setup (untimed): rank 0 builds the hierarchy in memory and writes the
// initial-condition files plus the replicated hierarchy metadata.
func (s *Sim) setup() {
	defer obs.Begin(s.r.Proc(), obs.LayerApp, "phase:setup").End()
	var h *amr.Hierarchy
	var enc []byte
	if s.r.Rank() == 0 {
		h = hierarchyFor(s.cfg)
		s.meta = core.FromHierarchy(h)
		enc = s.meta.Encode()
		// The ".hierarchy" metadata file: tiny, written by rank 0.
		f, err := s.fs.Create(s.client(), "ic.hierarchy")
		if err != nil {
			panic(err)
		}
		f.WriteAt(s.client(), enc, 0)
		f.Close(s.client())
		enc = s.r.Bcast(0, enc)
	} else {
		enc = s.r.Bcast(0, nil)
		m, err := core.DecodeHierarchyMeta(enc)
		if err != nil {
			panic(err)
		}
		s.meta = m
	}
	s.layout = core.NewLayout(s.meta)
	s.writeIC(h)
	s.r.Barrier()
}

// dispatch helpers

func (s *Sim) writeIC(h *amr.Hierarchy) {
	switch s.backend {
	case BackendHDF4:
		s.hdf4WriteIC(h)
	case BackendMPIIO, BackendMPIIOCB:
		switch {
		case s.compressed():
			// Compressed initial conditions are provisioned by scatter on
			// both shared and local file systems: per-rank partitions are
			// separately packed segments, so each rank writes its own.
			s.rawzProvisionIC(h)
		case s.localMode:
			s.rawProvisionLocalIC(h)
		default:
			s.rawWriteIC(h)
		}
	case BackendHDF5:
		if s.localMode || s.compressed() {
			s.h5ProvisionLocalIC(h)
		} else {
			s.h5WriteIC(h)
		}
	}
}

func (s *Sim) readInitial() {
	switch s.backend {
	case BackendHDF4:
		s.hdf4ReadInitial()
	case BackendMPIIO, BackendMPIIOCB:
		if s.compressed() {
			s.rawzReadInitial()
		} else {
			s.rawReadInitial()
		}
	case BackendHDF5:
		s.h5ReadInitial()
	}
}

func (s *Sim) writeDump(d int) {
	// Key the span by generation: aggregated counters for "dump" alone
	// collide across generations, which made re-dump cost unattributable.
	defer obs.Begin(s.r.Proc(), obs.LayerApp, fmt.Sprintf("dump:%02d", d)).End()
	s.writeDumpHierarchy(d)
	if s.cas != nil {
		s.casWriteDump(d)
		return
	}
	switch s.backend {
	case BackendHDF4:
		s.hdf4WriteDump(d)
	case BackendMPIIO, BackendMPIIOCB:
		if s.compressed() {
			s.rawzWriteDump(d)
		} else {
			s.rawWriteDump(d)
		}
	case BackendHDF5:
		s.h5WriteDump(d)
	}
}

// readRestartImpl dispatches to the backend restart reader; callers go
// through readRestart (asyncread.go), which adds the read-ahead pipeline
// bookkeeping when Config.AsyncIO applies.
func (s *Sim) readRestartImpl(d int) {
	if s.cas != nil {
		s.casReadRestart(d)
		return
	}
	switch s.backend {
	case BackendHDF4:
		s.hdf4ReadRestart(d)
	case BackendMPIIO, BackendMPIIOCB:
		if s.compressed() {
			s.rawzReadRestart(d)
		} else {
			s.rawReadRestart(d)
		}
	case BackendHDF5:
		s.h5ReadRestart(d)
	}
}

// assignSubgrids maps every subgrid to its post-load-balance owner with
// the greedy work-balanced policy over the replicated metadata, so all
// ranks compute identical assignments without communication.
func (s *Sim) assignSubgrids() []int {
	subs := s.meta.Subgrids()
	order := make([]int, len(subs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := subs[order[a]].Cells(), subs[order[b]].Cells()
		if ca != cb {
			return ca > cb
		}
		return order[a] < order[b]
	})
	owners := make([]int, len(s.meta.Grids)) // indexed by grid ID; 0 unused
	load := make([]int64, s.r.Size())
	for _, i := range order {
		best := 0
		for p := 1; p < s.r.Size(); p++ {
			if load[p] < load[best] {
				best = p
			}
		}
		owners[subs[i].ID] = best
		load[best] += subs[i].Cells()
	}
	return owners
}

// restartOwners maps subgrids to restart readers: round-robin per the
// paper, except on node-local disks where only the dump writer has the
// bytes.
func (s *Sim) restartOwners() []int {
	if s.localMode {
		return s.dumpOwners
	}
	owners := make([]int, len(s.meta.Grids))
	for i, g := range s.meta.Subgrids() {
		owners[g.ID] = i % s.r.Size()
	}
	return owners
}

// evolve models the computation between dumps: the load-balance
// consolidation of the block-partitioned initial subgrids onto their
// owners, plus the hydrodynamics work on owned cells.
func (s *Sim) evolve() {
	owners := s.assignSubgrids()
	s.dumpOwners = owners
	for _, g := range s.meta.Subgrids() {
		p := s.partials[g.ID-1]
		grid := s.consolidate(g, p, owners[g.ID])
		if grid != nil {
			s.owned[g.ID] = grid
		}
	}
	s.partials = nil
	var cells int64
	if s.top != nil {
		cells += s.top.sub.NumElems()
	}
	for _, g := range s.owned {
		cells += g.Cells()
	}
	s.r.Compute(cells * s.cfg.FlopsPerCell)
	for i := 0; i < s.cfg.RefineCycles; i++ {
		s.refineOwned()
	}
}

// consolidate gathers one block-partitioned subgrid onto its owner,
// returning the assembled grid there (nil elsewhere).
func (s *Sim) consolidate(g core.GridMeta, p *partition, owner int) *amr.Grid {
	var grid *amr.Grid
	if s.r.Rank() == owner {
		grid = &amr.Grid{
			ID: g.ID, Level: g.Level, Parent: g.Parent, Dims: g.Dims,
			LeftEdge: g.LeftEdge, RightEdge: g.RightEdge,
		}
		grid.Fields = make([][]byte, len(amr.FieldNames))
	}
	for f := range amr.FieldNames {
		blocks := s.r.Gatherv(owner, p.fields[f])
		if s.r.Rank() == owner {
			full := make([]byte, g.Cells()*amr.FieldElemSize)
			for rank, blk := range blocks {
				sub := core.FieldSubarray(g, s.pz, s.py, s.px, rank)
				sub.ScatterSub(full, blk)
			}
			s.r.CopyCost(g.Cells() * amr.FieldElemSize)
			grid.Fields[f] = full
		}
	}
	rows := packRows(&p.particles)
	gathered := s.r.GathervScratch(owner, rows) // rows is a fresh pack, garbage after this call
	if s.r.Rank() == owner {
		var total int
		for _, chunk := range gathered {
			total += len(chunk)
		}
		all := make([]byte, 0, total)
		for _, chunk := range gathered {
			all = append(all, chunk...)
		}
		grid.Particles = unpackRows(all)
	}
	return grid
}

func (s *Sim) clearState() {
	s.top = nil
	s.partials = nil
	s.owned = make(map[int]*amr.Grid)
}

// --- verification ---

type snapshotState struct {
	topFields    uint64
	topParticles uint64
	topCount     int64
	grids        map[int]uint64
}

// Verification hashing. The values are internal — only the Verified bool
// ever leaves a run — so the function is chosen for speed: an FNV-1a
// variant that folds 8 input bytes per multiply instead of one, which
// makes the dump/restart comparison ~8x cheaper than the byte-serial
// stdlib FNV while staying deterministic across machines (little-endian
// word loads from explicitly little-endian data).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func hashBytes(h64 uint64, b []byte) uint64 {
	h := (fnvOffset64 ^ h64) * fnvPrime64
	// Mixing the length first makes the zero-padded tail unambiguous.
	h ^= uint64(len(b))
	h *= fnvPrime64
	for len(b) >= 8 {
		h ^= binary.LittleEndian.Uint64(b)
		h *= fnvPrime64
		b = b[8:]
	}
	if len(b) > 0 {
		var tail uint64
		for i, c := range b {
			tail |= uint64(c) << (8 * i)
		}
		h ^= tail
		h *= fnvPrime64
	}
	return h
}

// particleSetHash hashes a particle set order-independently (sum of
// per-row hashes), so redistribution order does not matter. Rows are
// hashed array by array — the same byte stream Row would materialize,
// without allocating it.
func particleSetHash(ps *amr.ParticleSet) uint64 {
	var sum uint64
	for i := 0; i < ps.N; i++ {
		h := uint64(fnvOffset64)
		h *= fnvPrime64
		h ^= uint64(amr.BytesPerParticle())
		h *= fnvPrime64
		for k, a := range amr.ParticleArrays {
			seg := ps.Arrays[k][i*a.ElemSize : (i+1)*a.ElemSize]
			if a.ElemSize == 8 {
				h ^= binary.LittleEndian.Uint64(seg)
			} else {
				h ^= uint64(binary.LittleEndian.Uint32(seg))
			}
			h *= fnvPrime64
		}
		sum += h
	}
	return sum
}

func gridHash(g *amr.Grid) uint64 {
	var h uint64
	for _, f := range g.Fields {
		h = hashBytes(h, f)
	}
	return h + particleSetHash(&g.Particles)
}

func (s *Sim) snapshot() snapshotState {
	snap := snapshotState{grids: make(map[int]uint64)}
	if s.top != nil {
		var h uint64
		for _, f := range s.top.fields {
			h = hashBytes(h, f)
		}
		snap.topFields = h
		snap.topParticles = particleSetHash(&s.top.particles)
		snap.topCount = int64(s.top.particles.N)
	}
	for id, g := range s.owned {
		snap.grids[id] = gridHash(g)
	}
	return snap
}

// verify compares the restart state against the pre-dump snapshot. Field
// blocks must match per rank (the decomposition is identical); particles
// must match as a per-rank multiset; subgrid hashes are compared globally
// because restart ownership differs from dump ownership.
func (s *Sim) verify(snap snapshotState) bool {
	now := s.snapshot()
	localOK := int64(1)
	if now.topFields != snap.topFields || now.topParticles != snap.topParticles ||
		now.topCount != snap.topCount {
		localOK = 0
	}
	// Exchange (gridID, hash) pairs via gather on rank 0.
	enc := func(m map[int]uint64) []byte {
		ids := make([]int, 0, len(m))
		for id := range m {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		out := make([]byte, 0, len(ids)*16)
		for _, id := range ids {
			var b [16]byte
			for i := 0; i < 8; i++ {
				b[i] = byte(uint64(id) >> (8 * i))
				b[8+i] = byte(m[id] >> (8 * i))
			}
			out = append(out, b[:]...)
		}
		return out
	}
	dec := func(chunks [][]byte) map[int]uint64 {
		m := make(map[int]uint64)
		for _, c := range chunks {
			for p := 0; p+16 <= len(c); p += 16 {
				var id, h uint64
				for i := 0; i < 8; i++ {
					id |= uint64(c[p+i]) << (8 * i)
					h |= uint64(c[p+8+i]) << (8 * i)
				}
				m[int(id)] = h
			}
		}
		return m
	}
	before := s.r.Gatherv(0, enc(snap.grids))
	after := s.r.Gatherv(0, enc(now.grids))
	if s.r.Rank() == 0 {
		b, a := dec(before), dec(after)
		if len(b) != len(a) {
			localOK = 0
		}
		for id, h := range b {
			if a[id] != h {
				localOK = 0
			}
		}
	}
	return s.r.AllreduceInt64(localOK, mpi.OpMin) == 1
}
