// MDMS: the paper's future-work metadata management system in action. An
// application registers its arrays' structural metadata, the advisor
// recommends an I/O method per access pattern, every access feeds its
// measured outcome back into the database, and the advice adapts when the
// measurements disagree with the rule of thumb. The database persists
// across "sessions" via Export/Import.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/mdms"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/pfs"
	"repro/internal/sim"
)

const (
	dim    = 32
	nprocs = 8
)

func main() {
	system := mdms.New()
	app := system.Application("enzo")

	// Register the ENZO array inventory for one grid.
	g := core.GridMeta{Dims: [3]int{dim, dim, dim}, NParticles: 5000}
	for _, a := range g.Arrays() {
		if err := app.Register(a); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("registered %d datasets for application %q\n\n", len(app.Datasets()), app.Name)

	m, _ := app.Advise("density", "write", nprocs)
	fmt.Printf("rule-based advice for density writes:      %v\n", m)
	m, _ = app.Advise("particle_id", "write", nprocs)
	fmt.Printf("rule-based advice for particle_id writes:  %v\n\n", m)

	// Run a few dumps through the MDMS accessor; the advisor records
	// every access.
	for round := 0; round < 3; round++ {
		eng := sim.NewEngine()
		mach := machine.New(machine.Origin2000())
		fs := pfs.NewXFS(mach, pfs.DefaultXFS())
		pz, py, px := mpi.ProcGrid3D(nprocs)
		mpi.NewWorld(eng, mach, nprocs, func(r *mpi.Rank) {
			f, err := mpiio.Open(r, fs, "dump.raw", mpiio.ModeCreate, mpiio.DefaultHints())
			if err != nil {
				panic(err)
			}
			ac := mdms.NewAccessor(app, f)
			sub := mpi.BlockDecompose3D([3]int{dim, dim, dim}, pz, py, px, r.Rank(), 4)
			if err := ac.WriteArray("density", 0, sub, make([]byte, sub.Bytes())); err != nil {
				panic(err)
			}
			buf := make([]byte, sub.Bytes())
			if err := ac.ReadArray("density", 0, sub, buf); err != nil {
				panic(err)
			}
			f.Close()
		})
		if err := eng.Run(); err != nil {
			log.Fatal(err)
		}
	}
	d, _ := app.Dataset("density")
	fmt.Printf("after 3 dump/read rounds the database holds %d access records:\n", len(d.History))
	for _, rec := range d.History {
		fmt.Printf("  %-5s %-28v np=%d  %8d B in %.4fs (%.1f MB/s)\n",
			rec.Op, rec.Method, rec.Procs, rec.Bytes, rec.Seconds, rec.Bandwidth()/1e6)
	}

	// Persist the database and reload it, as a later session would.
	blob := system.Export()
	reloaded, err := mdms.Import(blob)
	if err != nil {
		log.Fatal(err)
	}
	m, _ = reloaded.Application("enzo").Advise("density", "write", nprocs)
	fmt.Printf("\ndatabase exported (%d bytes) and re-imported; advice for the next\n", len(blob))
	fmt.Printf("session's density writes at %d procs: %v\n", nprocs, m)
}
