// Restart: write several checkpoint dumps of an evolving AMR hierarchy and
// restart from the last one, for each I/O backend, verifying that the
// restart state matches the pre-dump state byte-for-byte — the round trip
// the paper's checkpoint/restart design must preserve.
package main

import (
	"fmt"
	"log"

	"repro/internal/enzo"
	"repro/internal/machine"
)

func main() {
	cfg := enzo.Tiny()
	cfg.Dumps = 3
	cfg.RefineCycles = 1 // the hierarchy deepens during the evolution
	const nprocs = 4

	fmt.Printf("Checkpoint/restart cycle: %s (+1 dynamic refinement), %d dumps, %d ranks, sp2/gpfs\n\n",
		cfg.Problem, cfg.Dumps, nprocs)
	for _, backend := range []enzo.Backend{enzo.BackendHDF4, enzo.BackendMPIIO, enzo.BackendHDF5} {
		res, err := enzo.RunOnce(machine.SP2(), "gpfs", nprocs, cfg, backend)
		if err != nil {
			log.Fatal(err)
		}
		status := "OK: restart state identical to checkpoint"
		if !res.Verified {
			status = "FAILED: restart state differs!"
		}
		fmt.Printf("%-6s  %d grids after refinement, dumps %.4fs total, restart-read %.4fs  -> %s\n",
			res.Backend, res.Grids, res.WriteTime(), res.RestartTime(), status)
	}
	fmt.Println("\nEvery backend moves real bytes through its own on-disk format;")
	fmt.Println("the verification hashes fields per rank and particles as multisets.")
}
