// Patterns: the paper's Figure 5 idea in isolation. A 3-D array stored in
// a file is read by every rank in (Block,Block,Block) decomposition, first
// with naive independent per-run requests, then with two-phase collective
// I/O, then with independent data sieving — showing how the access-pattern
// metadata of internal/core picks the right method.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/pfs"
	"repro/internal/sim"
)

const (
	dim    = 64
	elem   = 4
	nprocs = 8
)

// readArray measures one strategy for reading the (Block,Block,Block)
// partitioned array and returns the virtual makespan.
func readArray(strategy string) float64 {
	eng := sim.NewEngine()
	mach := machine.New(machine.Origin2000())
	fs := pfs.NewXFS(mach, pfs.DefaultXFS())
	pz, py, px := mpi.ProcGrid3D(nprocs)
	var elapsed float64
	mpi.NewWorld(eng, mach, nprocs, func(r *mpi.Rank) {
		hints := mpiio.DefaultHints()
		if strategy == "independent" {
			hints.DataSieving = false
		}
		f, err := mpiio.Open(r, fs, "array.dat", mpiio.ModeCreate, hints)
		if err != nil {
			panic(err)
		}
		if r.Rank() == 0 {
			f.WriteAt(make([]byte, dim*dim*dim*elem), 0)
		}
		r.Barrier()
		sub := mpi.BlockDecompose3D([3]int{dim, dim, dim}, pz, py, px, r.Rank(), elem)
		buf := make([]byte, sub.Bytes())
		t0 := r.Now()
		switch strategy {
		case "collective":
			f.ReadAtAll(sub.Flatten(), buf)
		default: // independent per-run, or data-sieving
			f.ReadRuns(sub.Flatten(), buf)
		}
		dt := r.AllreduceFloat64(r.Now()-t0, mpi.OpMax)
		if r.Rank() == 0 {
			elapsed = dt
		}
		f.Close()
	})
	if err := eng.Run(); err != nil {
		log.Fatal(err)
	}
	return elapsed
}

func main() {
	fmt.Printf("Reading a %d^3 array in (Block,Block,Block) over %d ranks (origin2000/xfs)\n\n", dim, nprocs)

	// First: what does the metadata say?
	g := core.GridMeta{Dims: [3]int{dim, dim, dim}}
	for _, a := range g.Arrays()[:1] {
		fmt.Printf("array %q: rank %d, pattern %v -> recommended method: %v\n",
			a.Name, a.Rank, a.Pattern, core.Recommend(a, true))
	}
	pmeta := core.GridMeta{Dims: [3]int{1, 1, 1}, NParticles: 1000}
	pa := pmeta.Arrays()[len(pmeta.Arrays())-1]
	fmt.Printf("array %q: rank %d, pattern %v -> recommended method: %v\n\n",
		pa.Name, pa.Rank, pa.Pattern, core.Recommend(pa, true))

	for _, s := range []string{"independent", "sieving", "collective"} {
		fmt.Printf("%-12s %.4f s\n", s, readArray(s))
	}
	fmt.Println("\nCollective two-phase I/O turns thousands of small strided requests")
	fmt.Println("into one large contiguous access per aggregator plus an in-memory")
	fmt.Println("redistribution — the optimization of Section 3.2.")
}
