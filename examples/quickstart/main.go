// Quickstart: run a small ENZO-style AMR simulation on a simulated SGI
// Origin2000 with XFS, once with the original sequential HDF4 I/O and once
// with the optimized MPI-IO path, and compare the timed I/O phases.
package main

import (
	"fmt"
	"log"

	"repro/internal/enzo"
	"repro/internal/machine"
)

func main() {
	cfg := enzo.Tiny() // a 16^3 root grid with two pre-refined levels
	const nprocs = 8

	fmt.Printf("ENZO I/O quickstart: %s on origin2000/xfs, %d ranks\n\n", cfg.Problem, nprocs)
	for _, backend := range []enzo.Backend{enzo.BackendHDF4, enzo.BackendMPIIO} {
		res, err := enzo.RunOnce(machine.Origin2000(), "xfs", nprocs, cfg, backend)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s  init-read %.4fs  dump %.4fs  restart-read %.4fs  (verified=%v, %d grids)\n",
			res.Backend, res.ReadTime(), res.WriteTime(), res.RestartTime(), res.Verified, res.Grids)
	}
	fmt.Println("\nThe MPI-IO port reads and writes the same bytes through collective")
	fmt.Println("two-phase I/O and block-wise particle access instead of funnelling")
	fmt.Println("everything through processor 0 — the paper's core optimization.")
}
