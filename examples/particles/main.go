// Particles: the paper's irregular access pattern in isolation. Particle
// records clustered around density clumps are dumped with a parallel
// sample sort by ID followed by block-wise contiguous writes, then read
// back block-wise and redistributed to the ranks owning their positions —
// Section 3.2's method for the 1-D particle arrays.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/internal/amr"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/pfs"
	"repro/internal/psort"
	"repro/internal/sim"
)

const nprocs = 8

func main() {
	eng := sim.NewEngine()
	mach := machine.New(machine.ChibaCity())
	fs := pfs.NewPVFS(mach, pfs.DefaultPVFS())

	clumps := amr.DefaultClumps(7, 4)
	counts := make([]int, nprocs)
	sortedOK := make([]bool, nprocs)
	var writeTime, readTime float64

	mpi.NewWorld(eng, mach, nprocs, func(r *mpi.Rank) {
		// Every rank starts with particles clustered around the clumps —
		// the irregular spatial distribution.
		ps := amr.NewParticleSet(0)
		local := amr.NewTopGrid([3]int{8, 8, 8}, 2000, clumps, int64(100+r.Rank()))
		ps = local.Particles
		for i := 0; i < ps.N; i++ {
			ps.SetID(i, int64(r.Rank()*1_000_000+i)) // globally unique IDs
		}

		rowSize := int(amr.BytesPerParticle())
		rows := make([][]byte, ps.N)
		for i := range rows {
			rows[i] = ps.Row(i)
		}

		f, err := mpiio.Open(r, fs, "particles.dat", mpiio.ModeCreate, mpiio.DefaultHints())
		if err != nil {
			panic(err)
		}

		// Write path: parallel sample sort by ID, then one contiguous
		// block-wise write per rank.
		t0 := r.Now()
		sorted := psort.SampleSort(r, rows, rowSize, psort.IDKey(0))
		sortedOK[r.Rank()] = psort.IsGloballySorted(r, sorted, psort.IDKey(0))
		var blob []byte
		for _, row := range sorted {
			blob = append(blob, row...)
		}
		off := r.ExscanInt64(int64(len(blob)))
		f.WriteAt(blob, off)
		r.Barrier()
		if dt := r.AllreduceFloat64(r.Now()-t0, mpi.OpMax); r.Rank() == 0 {
			writeTime = dt
		}

		// Read path: block-wise contiguous read of an even share, then
		// inspect the IDs (a redistribution by position would follow in
		// the application).
		total := r.AllreduceInt64(int64(len(blob)), mpi.OpSum)
		nRows := total / int64(rowSize)
		per := nRows / int64(r.Size())
		lo := per * int64(r.Rank())
		hi := lo + per
		if r.Rank() == r.Size()-1 {
			hi = nRows
		}
		t0 = r.Now()
		buf := make([]byte, (hi-lo)*int64(rowSize))
		f.ReadAt(buf, lo*int64(rowSize))
		r.Barrier()
		if dt := r.AllreduceFloat64(r.Now()-t0, mpi.OpMax); r.Rank() == 0 {
			readTime = dt
		}
		counts[r.Rank()] = int(hi - lo)

		// Sanity: the IDs in my block are ascending (globally sorted file).
		prev := int64(-1)
		for p := 0; p+rowSize <= len(buf); p += rowSize {
			id := int64(binary.LittleEndian.Uint64(buf[p:]))
			if id < prev {
				panic("file not globally sorted")
			}
			prev = id
		}
		f.Close()
	})
	if err := eng.Run(); err != nil {
		log.Fatal(err)
	}

	total := 0
	for _, c := range counts {
		total += c
	}
	fmt.Printf("Irregular particle I/O on chiba/pvfs with %d ranks\n\n", nprocs)
	fmt.Printf("parallel sample sort + block-wise write: %.4f s (globally sorted: %v)\n",
		writeTime, sortedOK[0])
	fmt.Printf("block-wise contiguous read:              %.4f s (%d particles)\n", readTime, total)
	fmt.Println("\nBlock-wise 1-D access is always contiguous per processor, so no")
	fmt.Println("collective I/O is needed — redistribution happens in memory instead.")
}
