// Command iodoctor runs one ENZO configuration under the observability
// layer (or loads a previously saved report) and diagnoses its I/O:
// critical-path attribution across the stack, detectors for the paper's
// pathologies (small scattered writes, collective-buffering mismatch, rank
// imbalance, straggler servers, sieving amplification, unhidden async
// time), candidate hint deltas, and report-vs-report regression diffs.
//
// Usage:
//
//	iodoctor [-machine chiba] [-fs pvfs] [-backend mpiio] [-problem AMR128]
//	         [-np 8] [-membudget MIB] [-quick] [-codec none] [-async] [-scrub] [-cbnodes N]
//	         [-autotune] [-probe-report FILE]
//	         [-straggler FACTOR] [-corrupt N] [-castore] [-replicas K]
//	         [-format text|json|metrics] [-o FILE] [-report FILE]
//	         [-diff BASELINE.json] [-fail-on none|warning|critical]
//
// -report loads a JSON document written earlier with -format json instead
// of running a simulation; -diff compares a baseline document against the
// current run (or -report) and emits regression findings. With -o and
// -format json the findings table still goes to stdout, so one invocation
// serves both humans and artifact collection. -fail-on exits 3 when any
// finding reaches the given severity.
//
// -autotune runs the short probe first, feeds its report through the
// detector registry, and applies the derived hint deltas to the main run;
// -probe-report saves the probe's diagnosis document (report + chosen
// deltas) as a JSON artifact. Neither combines with -report, which skips
// the simulation entirely.
//
// All output derives from deterministic virtual-time telemetry: repeated
// runs of the same configuration produce byte-identical bytes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/compress"
	"repro/internal/diag"
	"repro/internal/enzo"
	"repro/internal/faultfs"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/pfs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("iodoctor", flag.ContinueOnError)
	fl.SetOutput(stderr)
	mach := fl.String("machine", "chiba", "platform: origin2000, sp2, chiba or cluster1024")
	fsKind := fl.String("fs", "pvfs", "file system: xfs, gpfs, pvfs or local")
	backendName := fl.String("backend", "mpiio", "I/O backend: hdf4, mpiio, hdf5 or mpiio-cb")
	problem := fl.String("problem", "AMR128", "problem size: tiny, AMR64, AMR128, AMR256 or AMR512")
	np := fl.Int("np", 8, "number of MPI ranks")
	membudget := fl.Int64("membudget", 0, "host-memory footprint budget in MiB (0 = 16384 default, negative = unlimited; AMR512 needs this raised)")
	quick := fl.Bool("quick", false, "shrink the problem for a fast smoke run")
	codec := fl.String("codec", "none", "transparent field compression: none, rle, delta, lzss")
	async := fl.Bool("async", false, "write-behind checkpoint I/O")
	scrub := fl.Bool("scrub", false, "read-back scrub after each dump")
	castore := fl.Bool("castore", false, "content-addressed checkpoint store with cross-generation dedup")
	replicas := fl.Int("replicas", 1, "data servers each castore chunk/manifest is replicated on (needs -castore)")
	cbnodes := fl.Int("cbnodes", 0, "override the cb_nodes hint (0 = ROMIO default, one aggregator per node)")
	autotune := fl.Bool("autotune", false, "tune the MPI-IO hint vector off a short probe run before the main run")
	probeReport := fl.String("probe-report", "", "write the -autotune probe's diagnosis document (report + chosen deltas) here")
	straggler := fl.Float64("straggler", 1, "degrade one data server of a striped fs by this service-time factor")
	corrupt := fl.Int64("corrupt", 0, "silently corrupt every Nth sizeable checkpoint write (0 = off)")
	format := fl.String("format", "text", "output format: text, json or metrics (OpenMetrics)")
	outPath := fl.String("o", "", "write the formatted output here (default stdout)")
	reportPath := fl.String("report", "", "load a saved -format json document instead of running")
	diffPath := fl.String("diff", "", "baseline -format json document to diff the current report against")
	failOn := fl.String("fail-on", "none", "exit 3 if any finding reaches this severity: none, warning or critical")
	if err := fl.Parse(args); err != nil {
		return 2
	}

	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "error: "+format+"\n", args...)
		fl.Usage()
		return 2
	}

	switch *format {
	case "text", "json", "metrics":
	default:
		return fail("iodoctor: unknown -format %q (want text, json or metrics)", *format)
	}
	var failSev diag.Severity
	switch *failOn {
	case "none":
		failSev = diag.SevCritical + 1
	case "warning":
		failSev = diag.SevWarn
	case "critical":
		failSev = diag.SevCritical
	default:
		return fail("iodoctor: unknown -fail-on %q (want none, warning or critical)", *failOn)
	}

	var rep *diag.Report
	var tuneDeltas []diag.HintsDelta
	if *reportPath != "" {
		if *autotune {
			return fail("iodoctor: -autotune needs a simulation run, not -report")
		}
		if *probeReport != "" {
			return fail("iodoctor: -probe-report needs -autotune, not -report")
		}
		var err error
		rep, err = loadReport(*reportPath)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
	} else {
		if *probeReport != "" && !*autotune {
			return fail("iodoctor: -probe-report needs -autotune")
		}
		cfg, err := configByName(*problem)
		if err != nil {
			return fail("%v", err)
		}
		switch {
		case *membudget > 0:
			cfg.MemBudget = *membudget << 20
		case *membudget < 0:
			cfg.MemBudget = -1
		}
		if *quick {
			n := cfg.Dims[0] / 4
			if n < 8 {
				n = 8
			}
			cfg.Dims = [3]int{n, n, n}
			cfg.NParticles = n * n * n / 2
		}
		if _, err := compress.Resolve(*codec); err != nil {
			return fail("%v", err)
		}
		cfg.Codec = *codec
		cfg.AsyncIO = *async
		cfg.ScrubOnDump = *scrub
		cfg.CAStore = *castore
		cfg.Replicas = *replicas
		if *replicas < 1 {
			return fail("iodoctor: -replicas must be >= 1 (got %d)", *replicas)
		}
		if *replicas > 1 && !*castore {
			return fail("iodoctor: -replicas needs -castore")
		}
		cfg.CBNodes = *cbnodes
		backend, err := enzo.BackendByName(*backendName)
		if err != nil {
			return fail("%v", err)
		}
		machCfg, err := machineByName(*mach)
		if err != nil {
			return fail("%v", err)
		}
		if *np < 1 {
			return fail("iodoctor: -np must be at least 1 (got %d)", *np)
		}
		if *straggler < 1 {
			return fail("iodoctor: -straggler must be >= 1 (got %g)", *straggler)
		}
		if *corrupt < 0 {
			return fail("iodoctor: -corrupt must be >= 0 (got %d)", *corrupt)
		}
		var wraps []func(pfs.FileSystem) pfs.FileSystem
		if *straggler > 1 {
			switch *fsKind {
			case "pvfs", "gpfs":
			default:
				return fail("iodoctor: -straggler needs a striped file system (pvfs, gpfs); got %q", *fsKind)
			}
			f := *straggler
			wraps = append(wraps, func(fs pfs.FileSystem) pfs.FileSystem {
				fs.(pfs.StripeFaultInjector).DegradeDataServer(0, f)
				return fs
			})
		}
		if *corrupt > 0 {
			n := *corrupt
			wraps = append(wraps, func(fs pfs.FileSystem) pfs.FileSystem {
				return faultfs.Wrap(fs, faultfs.Config{
					Mode: faultfs.CorruptWrite, EveryN: n,
					MinBytes: 2048, FileSubstr: "dump", MaxInject: 4,
				})
			})
		}
		var wrap func(pfs.FileSystem) pfs.FileSystem
		if len(wraps) > 0 {
			ws := wraps
			wrap = func(fs pfs.FileSystem) pfs.FileSystem {
				for _, w := range ws {
					fs = w(fs)
				}
				return fs
			}
		}

		if *autotune {
			tuned, deltas, probeRep, err := diag.AutoTune(machCfg, *fsKind, *np, cfg, backend)
			if err != nil {
				fmt.Fprintln(stderr, "error:", err)
				return 1
			}
			cfg = tuned
			tuneDeltas = deltas
			if *probeReport != "" {
				doc := diag.Document{Report: probeRep, Suggestions: deltas}
				b, err := json.MarshalIndent(doc, "", "  ")
				if err != nil {
					fmt.Fprintln(stderr, "error:", err)
					return 1
				}
				if err := os.WriteFile(*probeReport, append(b, '\n'), 0o644); err != nil {
					fmt.Fprintln(stderr, "error:", err)
					return 1
				}
			}
		}

		tr := obs.NewTracer()
		res, err := enzo.RunOnceWrappedTraced(machCfg, *fsKind, *np, cfg, backend, wrap, tr)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		rep = diag.Snapshot(tr, diag.MetaFromResult(*mach, res, cfg))
	}

	var findings []diag.Finding
	var suggestions []diag.HintsDelta
	if *diffPath != "" {
		base, err := loadReport(*diffPath)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		findings = diag.Diff(base, rep)
	} else {
		findings = diag.Analyze(rep)
		suggestions = diag.Suggest(rep)
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		defer f.Close()
		out = f
	}
	switch *format {
	case "json":
		doc := diag.Document{Report: rep, Findings: findings, Suggestions: suggestions}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		if *outPath != "" {
			// One invocation serves both the artifact and the log.
			diag.WriteFindings(stdout, findings)
		}
	case "metrics":
		diag.WriteOpenMetrics(out, rep, findings)
	default:
		if *autotune {
			if len(tuneDeltas) == 0 {
				fmt.Fprintln(out, "autotune: defaults already optimal (no deltas applied)")
			}
			for _, d := range tuneDeltas {
				fmt.Fprintf(out, "autotune: applied %s: %s -> %s (%s)\n", d.Param, d.From, d.To, d.Why)
			}
			fmt.Fprintln(out)
		}
		diag.WriteReportText(out, rep)
		fmt.Fprintln(out)
		diag.WriteFindings(out, findings)
		if *diffPath == "" {
			fmt.Fprintln(out)
			diag.WriteSuggestions(out, suggestions)
		}
	}

	if diag.MaxSeverity(findings) >= failSev {
		fmt.Fprintf(stderr, "iodoctor: findings at or above severity %q (exit 3)\n", *failOn)
		return 3
	}
	return 0
}

// loadReport reads a -format json document (or a bare report) from path.
func loadReport(path string) (*diag.Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc diag.Document
	if err := json.Unmarshal(b, &doc); err == nil && doc.Report != nil {
		return doc.Report, nil
	}
	var rep diag.Report
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("iodoctor: %s is neither a document nor a report: %w", path, err)
	}
	return &rep, nil
}

func machineByName(name string) (machine.Config, error) {
	switch name {
	case "origin2000", "sp2", "chiba", "cluster1024":
		return machine.ByName(name), nil
	}
	return machine.Config{}, fmt.Errorf("iodoctor: unknown machine %q (want origin2000, sp2, chiba or cluster1024)", name)
}

func configByName(name string) (enzo.Config, error) {
	switch name {
	case "tiny", "Tiny":
		return enzo.Tiny(), nil
	case "AMR64":
		return enzo.AMR64(), nil
	case "AMR128":
		return enzo.AMR128(), nil
	case "AMR256":
		return enzo.AMR256(), nil
	case "AMR512":
		return enzo.AMR512(), nil
	}
	return enzo.Config{}, fmt.Errorf("iodoctor: unknown problem %q", name)
}
