package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/diag"
)

func TestBadFlagsRejected(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"bad machine", []string{"-machine", "bluegene"}},
		{"bad problem", []string{"-problem", "AMR1024"}},
		{"bad backend", []string{"-backend", "netcdf"}},
		{"bad codec", []string{"-codec", "zip"}},
		{"bad format", []string{"-format", "xml"}},
		{"bad fail-on", []string{"-fail-on", "info"}},
		{"zero ranks", []string{"-np", "0"}},
		{"sub-unity straggler", []string{"-straggler", "0.5"}},
		{"negative corrupt", []string{"-corrupt", "-1"}},
		{"straggler on unstriped fs", []string{"-fs", "xfs", "-straggler", "2"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), "Usage of iodoctor") {
				t.Fatalf("no usage message on stderr:\n%s", stderr.String())
			}
		})
	}
}

// tinyArgs is the fast end-to-end configuration the CLI tests share.
func tinyArgs(extra ...string) []string {
	return append([]string{"-problem", "tiny", "-np", "4"}, extra...)
}

func TestByteIdenticalRuns(t *testing.T) {
	out := func() []byte {
		var stdout, stderr bytes.Buffer
		if code := run(tinyArgs(), &stdout, &stderr); code != 0 {
			t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
		}
		return stdout.Bytes()
	}
	if !bytes.Equal(out(), out()) {
		t.Error("repeated identical runs produced different output")
	}
}

func TestJSONDocumentAndFailOn(t *testing.T) {
	// cb_nodes=2 against 8 PVFS IODs is a 4x mismatch: critical.
	var stdout, stderr bytes.Buffer
	code := run(tinyArgs("-cbnodes", "2", "-format", "json", "-fail-on", "critical"), &stdout, &stderr)
	if code != 3 {
		t.Fatalf("exit code = %d, want 3 (stderr: %s)", code, stderr.String())
	}
	var doc diag.Document
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("output is not a diagnosis document: %v", err)
	}
	var mismatch *diag.Finding
	for i, f := range doc.Findings {
		if f.Detector == "cb-mismatch" {
			mismatch = &doc.Findings[i]
		}
	}
	if mismatch == nil || mismatch.Severity != diag.SevCritical {
		t.Fatalf("no critical cb-mismatch finding: %+v", doc.Findings)
	}
	var cb *diag.HintsDelta
	for i, d := range doc.Suggestions {
		if d.Param == "cb_nodes" {
			cb = &doc.Suggestions[i]
		}
	}
	if cb == nil || cb.CBNodes == nil || *cb.CBNodes != 8 {
		t.Fatalf("no cb_nodes=8 suggestion: %+v", doc.Suggestions)
	}
}

func TestMetricsFormat(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(tinyArgs("-format", "metrics"), &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("metrics output does not end with # EOF:\n...%s", out[max(0, len(out)-200):])
	}
	if !strings.Contains(out, "# TYPE") || !strings.Contains(out, "iodoctor_") {
		t.Fatalf("metrics output missing exposition structure:\n%s", out[:min(len(out), 400)])
	}
}

func TestReportAndDiffRoundTrip(t *testing.T) {
	dir := t.TempDir()
	saved := filepath.Join(dir, "doc.json")

	var stdout, stderr bytes.Buffer
	if code := run(tinyArgs("-format", "json", "-o", saved), &stdout, &stderr); code != 0 {
		t.Fatalf("save run exit code = %d, stderr: %s", code, stderr.String())
	}
	// With -o and -format json the findings still go to stdout.
	if !strings.Contains(stdout.String(), "== findings") && !strings.Contains(stdout.String(), "no findings") {
		t.Fatalf("-o json run printed no findings summary:\n%s", stdout.String())
	}

	// Reload the saved document instead of simulating.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-report", saved}, &stdout, &stderr); code != 0 {
		t.Fatalf("-report exit code = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "== run ==") {
		t.Fatalf("-report did not render the report:\n%s", stdout.String())
	}

	// Diffing a report against itself: no regressions, only the makespan
	// info line — must stay exit 0 even with -fail-on warning.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-report", saved, "-diff", saved, "-fail-on", "warning"}, &stdout, &stderr); code != 0 {
		t.Fatalf("self-diff exit code = %d, stderr: %s\n%s", code, stderr.String(), stdout.String())
	}
	if !strings.Contains(stdout.String(), "makespan") {
		t.Fatalf("self-diff missing the makespan line:\n%s", stdout.String())
	}
}
