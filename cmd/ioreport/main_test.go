package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestBadFlagsRejected(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"bad machine", []string{"-machine", "bluegene"}},
		{"bad problem", []string{"-problem", "AMR512"}},
		{"bad backend", []string{"-backend", "netcdf"}},
		{"bad codec", []string{"-codec", "zip"}},
		{"zero ranks", []string{"-np", "0"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), "Usage of ioreport") {
				t.Fatalf("no usage message on stderr:\n%s", stderr.String())
			}
		})
	}
}

func TestTinyScrubReportRuns(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-problem", "tiny", "-np", "4", "-scrub"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "verified=true") || !strings.Contains(out, "scrub:") {
		t.Fatalf("report missing fields:\n%s", out)
	}
}
