package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/diag"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

func TestBadFlagsRejected(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"bad machine", []string{"-machine", "bluegene"}},
		{"bad problem", []string{"-problem", "AMR1024"}},
		{"bad backend", []string{"-backend", "netcdf"}},
		{"bad codec", []string{"-codec", "zip"}},
		{"bad format", []string{"-format", "xml"}},
		{"zero ranks", []string{"-np", "0"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), "Usage of ioreport") {
				t.Fatalf("no usage message on stderr:\n%s", stderr.String())
			}
		})
	}
}

func TestTinyScrubReportRuns(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-problem", "tiny", "-np", "4", "-scrub"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "verified=true") || !strings.Contains(out, "scrub:") {
		t.Fatalf("report missing fields:\n%s", out)
	}
}

// TestJSONGolden pins the -format json document for a tiny deterministic
// run byte-for-byte. Regenerate with: go test ./cmd/ioreport -update-golden
func TestJSONGolden(t *testing.T) {
	args := []string{"-problem", "tiny", "-np", "4", "-format", "json"}
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}

	var doc diag.Document
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("output is not a diagnosis document: %v", err)
	}
	if doc.Report == nil || doc.Report.Meta.Problem != "Tiny" || doc.Report.Meta.Procs != 4 {
		t.Fatalf("document meta wrong: %+v", doc.Report)
	}

	golden := filepath.Join("testdata", "tiny_np4.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("-format json output drifted from %s; if intentional, regenerate with -update-golden", golden)
	}
}

// TestDiagnoseAppendsFindings checks the -diagnose text-mode tail.
func TestDiagnoseAppendsFindings(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-problem", "tiny", "-np", "4", "-diagnose"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "== findings") {
		t.Fatalf("-diagnose did not append a findings table:\n%s", stdout.String())
	}
}
