// Command ioreport runs one ENZO configuration with the stack-wide
// observability layer attached and emits the run's I/O characterization:
// a Darshan-style per-rank counter report attributing virtual time across
// the stack (application, HDF, MPI-IO with its two-phase exchange/io
// split, MPI, file system), and optionally a Chrome trace-event JSON
// timeline loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Usage:
//
//	ioreport [-machine chiba] [-fs pvfs] [-backend mpiio] [-problem AMR64]
//	         [-np 8] [-membudget MIB] [-quick] [-codec none|rle|delta|lzss] [-async] [-scrub]
//	         [-format text|json] [-diagnose]
//	         [-trace timeline.json] [-o report.txt]
//
// -format json emits the machine-readable diagnosis document (the same
// schema iodoctor writes), suitable for iodoctor -report/-diff. -diagnose
// appends the ranked findings table to the text report.
//
// Tracing is zero-perturbation: the virtual timings of a traced run are
// bit-identical to the same run without instrumentation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/compress"
	"repro/internal/diag"
	"repro/internal/enzo"
	"repro/internal/machine"
	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("ioreport", flag.ContinueOnError)
	fl.SetOutput(stderr)
	mach := fl.String("machine", "chiba", "platform: origin2000, sp2, chiba or cluster1024")
	fsKind := fl.String("fs", "pvfs", "file system: xfs, gpfs, pvfs or local")
	backendName := fl.String("backend", "mpiio", "I/O backend: hdf4, mpiio, hdf5 or mpiio-cb")
	problem := fl.String("problem", "AMR64", "problem size: tiny, AMR64, AMR128, AMR256 or AMR512")
	membudget := fl.Int64("membudget", 0, "host-memory footprint budget in MiB (0 = 16384 default, negative = unlimited; AMR512 needs this raised)")
	np := fl.Int("np", 8, "number of MPI ranks")
	quick := fl.Bool("quick", false, "shrink the problem for a fast smoke run")
	codec := fl.String("codec", "none", "transparent field compression: none, rle, delta, lzss")
	async := fl.Bool("async", false, "write-behind checkpoint I/O: overlap dumps with the next step's compute")
	autotune := fl.Bool("autotune", false, "tune the MPI-IO hint vector off a short probe run before the main run")
	scrub := fl.Bool("scrub", false, "read-back scrub after each dump, with re-dump and generation-fallback recovery")
	castore := fl.Bool("castore", false, "content-addressed checkpoint store with cross-generation dedup")
	replicas := fl.Int("replicas", 1, "data servers each castore chunk/manifest is replicated on (needs -castore)")
	format := fl.String("format", "text", "output format: text, or json (the iodoctor diagnosis document)")
	diagnose := fl.Bool("diagnose", false, "append the ranked diagnosis findings to the text report")
	tracePath := fl.String("trace", "", "write a Perfetto-loadable trace-event JSON timeline here")
	outPath := fl.String("o", "", "write the counter report here (default stdout)")
	if err := fl.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "error:", err)
		fl.Usage()
		return 2
	}

	switch *format {
	case "text", "json":
	default:
		return fail(fmt.Errorf("ioreport: unknown -format %q (want text or json)", *format))
	}
	cfg, err := configByName(*problem)
	if err != nil {
		return fail(err)
	}
	switch {
	case *membudget > 0:
		cfg.MemBudget = *membudget << 20
	case *membudget < 0:
		cfg.MemBudget = -1
	}
	if *quick {
		n := cfg.Dims[0] / 4
		if n < 8 {
			n = 8
		}
		cfg.Dims = [3]int{n, n, n}
		cfg.NParticles = n * n * n / 2
	}
	if _, err := compress.Resolve(*codec); err != nil {
		return fail(err)
	}
	cfg.Codec = *codec
	cfg.AsyncIO = *async
	cfg.ScrubOnDump = *scrub
	cfg.CAStore = *castore
	cfg.Replicas = *replicas
	if *replicas < 1 {
		return fail(fmt.Errorf("ioreport: -replicas must be >= 1 (got %d)", *replicas))
	}
	if *replicas > 1 && !*castore {
		return fail(fmt.Errorf("ioreport: -replicas needs -castore"))
	}
	backend, err := enzo.BackendByName(*backendName)
	if err != nil {
		return fail(err)
	}
	machCfg, err := machineByName(*mach)
	if err != nil {
		return fail(err)
	}
	if *np < 1 {
		return fail(fmt.Errorf("ioreport: -np must be at least 1 (got %d)", *np))
	}

	var tuneDeltas []diag.HintsDelta
	if *autotune {
		var tuned enzo.Config
		tuned, tuneDeltas, _, err = diag.AutoTune(machCfg, *fsKind, *np, cfg, backend)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		cfg = tuned
	}
	tr := obs.NewTracer()
	res, err := enzo.RunOnceTraced(machCfg, *fsKind, *np, cfg, backend, tr)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		defer f.Close()
		out = f
	}

	if *format == "json" {
		rep := diag.Snapshot(tr, diag.MetaFromResult(*mach, res, cfg))
		doc := diag.Document{
			Report:      rep,
			Findings:    diag.Analyze(rep),
			Suggestions: diag.Suggest(rep),
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		return writeTimeline(tr, *tracePath, stderr)
	}
	fmt.Fprintf(out, "%s %s/%s backend=%s np=%d verified=%v\n",
		res.Problem, *mach, *fsKind, res.Backend, res.Procs, res.Verified)
	if *autotune {
		if len(tuneDeltas) == 0 {
			fmt.Fprintln(out, "autotune: defaults already optimal (no deltas)")
		}
		for _, d := range tuneDeltas {
			fmt.Fprintf(out, "autotune: %s: %s -> %s (%s)\n", d.Param, d.From, d.To, d.Why)
		}
	}
	fmt.Fprintf(out, "phases: read=%.3fs write=%.3fs restart=%.3fs\n",
		res.ReadTime(), res.WriteTime(), res.RestartTime())
	if *scrub {
		fmt.Fprintf(out, "scrub: %.3fs, failures=%d redumps=%d fallbacks=%d\n",
			res.Phase("scrub"), res.ScrubFailures, res.Redumps, res.RestartFallbacks)
	}
	fmt.Fprintln(out)
	tr.WriteReport(out, res.Makespan)
	if *diagnose {
		rep := diag.Snapshot(tr, diag.MetaFromResult(*mach, res, cfg))
		fmt.Fprintln(out)
		diag.WriteFindings(out, diag.Analyze(rep))
	}

	return writeTimeline(tr, *tracePath, stderr)
}

// writeTimeline writes the Perfetto trace when requested.
func writeTimeline(tr *obs.Tracer, path string, stderr io.Writer) int {
	if path == "" {
		return 0
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	if err := tr.WriteTrace(f); err != nil {
		f.Close()
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	fmt.Fprintf(stderr, "timeline written to %s (load in ui.perfetto.dev)\n", path)
	return 0
}

func machineByName(name string) (machine.Config, error) {
	switch name {
	case "origin2000", "sp2", "chiba", "cluster1024":
		return machine.ByName(name), nil
	}
	return machine.Config{}, fmt.Errorf("ioreport: unknown machine %q (want origin2000, sp2, chiba or cluster1024)", name)
}

func configByName(name string) (enzo.Config, error) {
	switch name {
	case "tiny", "Tiny":
		return enzo.Tiny(), nil
	case "AMR64":
		return enzo.AMR64(), nil
	case "AMR128":
		return enzo.AMR128(), nil
	case "AMR256":
		return enzo.AMR256(), nil
	case "AMR512":
		return enzo.AMR512(), nil
	}
	return enzo.Config{}, fmt.Errorf("ioreport: unknown problem %q", name)
}
