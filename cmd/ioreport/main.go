// Command ioreport runs one ENZO configuration with the stack-wide
// observability layer attached and emits the run's I/O characterization:
// a Darshan-style per-rank counter report attributing virtual time across
// the stack (application, HDF, MPI-IO with its two-phase exchange/io
// split, MPI, file system), and optionally a Chrome trace-event JSON
// timeline loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Usage:
//
//	ioreport [-machine chiba] [-fs pvfs] [-backend mpiio] [-problem AMR64]
//	         [-np 8] [-quick] [-codec none|rle|delta|lzss] [-async]
//	         [-trace timeline.json] [-o report.txt]
//
// Tracing is zero-perturbation: the virtual timings of a traced run are
// bit-identical to the same run without instrumentation.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/compress"
	"repro/internal/enzo"
	"repro/internal/machine"
	"repro/internal/obs"
)

func main() {
	mach := flag.String("machine", "chiba", "platform: origin2000, sp2 or chiba")
	fsKind := flag.String("fs", "pvfs", "file system: xfs, gpfs, pvfs or local")
	backendName := flag.String("backend", "mpiio", "I/O backend: hdf4, mpiio, hdf5 or mpiio-cb")
	problem := flag.String("problem", "AMR64", "problem size: tiny, AMR64, AMR128 or AMR256")
	np := flag.Int("np", 8, "number of MPI ranks")
	quick := flag.Bool("quick", false, "shrink the problem for a fast smoke run")
	codec := flag.String("codec", "none", "transparent field compression: none, rle, delta, lzss")
	async := flag.Bool("async", false, "write-behind checkpoint I/O: overlap dumps with the next step's compute")
	tracePath := flag.String("trace", "", "write a Perfetto-loadable trace-event JSON timeline here")
	outPath := flag.String("o", "", "write the counter report here (default stdout)")
	flag.Parse()

	cfg, err := configByName(*problem)
	if err != nil {
		fatal(err)
	}
	if *quick {
		n := cfg.Dims[0] / 4
		if n < 8 {
			n = 8
		}
		cfg.Dims = [3]int{n, n, n}
		cfg.NParticles = n * n * n / 2
	}
	if _, err := compress.Resolve(*codec); err != nil {
		fatal(err)
	}
	cfg.Codec = *codec
	cfg.AsyncIO = *async
	backend, err := enzo.BackendByName(*backendName)
	if err != nil {
		fatal(err)
	}
	machCfg, err := machineByName(*mach)
	if err != nil {
		fatal(err)
	}
	if *np < 1 {
		fatal(fmt.Errorf("ioreport: -np must be at least 1 (got %d)", *np))
	}

	tr := obs.NewTracer()
	res, err := enzo.RunOnceTraced(machCfg, *fsKind, *np, cfg, backend, tr)
	if err != nil {
		fatal(err)
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	fmt.Fprintf(out, "%s %s/%s backend=%s np=%d verified=%v\n",
		res.Problem, *mach, *fsKind, res.Backend, res.Procs, res.Verified)
	fmt.Fprintf(out, "phases: read=%.3fs write=%.3fs restart=%.3fs\n\n",
		res.ReadTime(), res.WriteTime(), res.RestartTime())
	tr.WriteReport(out, res.Makespan)

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := tr.WriteTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "timeline written to %s (load in ui.perfetto.dev)\n", *tracePath)
	}
}

func machineByName(name string) (machine.Config, error) {
	switch name {
	case "origin2000", "sp2", "chiba":
		return machine.ByName(name), nil
	}
	return machine.Config{}, fmt.Errorf("ioreport: unknown machine %q (want origin2000, sp2 or chiba)", name)
}

func configByName(name string) (enzo.Config, error) {
	switch name {
	case "tiny", "Tiny":
		return enzo.Tiny(), nil
	case "AMR64":
		return enzo.AMR64(), nil
	case "AMR128":
		return enzo.AMR128(), nil
	case "AMR256":
		return enzo.AMR256(), nil
	}
	return enzo.Config{}, fmt.Errorf("ioreport: unknown problem %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
