// Command enzosim runs one simulated ENZO configuration — platform, file
// system, processor count, problem size and I/O backend — and prints the
// timed phases, byte accounting and verification status.
//
// Usage:
//
//	enzosim [-machine origin2000|sp2|chiba|cluster1024] [-fs xfs|gpfs|pvfs|local]
//	        [-np N] [-problem AMR64|AMR128|AMR256|AMR512|tiny] [-membudget MIB]
//	        [-backend hdf4|mpiio|mpiio-cb|hdf5] [-dumps N]
//	        [-codec none|rle|delta|lzss] [-async] [-autotune]
//	        [-scrub] [-generations N] [-straggler FACTOR] [-corrupt N]
//	        [-castore] [-replicas K]
//
// The fault flags: -scrub enables the post-dump read-back scrub with
// re-dump and generation-fallback recovery; -generations bounds how many
// dump generations the restart fallback scans; -straggler degrades one
// data server of a striped file system (pvfs, gpfs) by the given
// service-time factor; -corrupt silently corrupts every Nth sizeable write
// to checkpoint files, which -scrub then has to catch.
//
// -castore routes dumps and restarts through the content-addressed chunk
// store (cross-generation dedup); -replicas places each chunk and manifest
// on K data servers so restart reads fail over past a dead server.
//
// Times are deterministic virtual seconds on the modelled platform, not
// wall-clock time of the simulator.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/compress"
	"repro/internal/diag"
	"repro/internal/enzo"
	"repro/internal/faultfs"
	"repro/internal/iotrace"
	"repro/internal/machine"
	"repro/internal/pfs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("enzosim", flag.ContinueOnError)
	fl.SetOutput(stderr)
	machName := fl.String("machine", "origin2000", "platform model: origin2000, sp2, chiba, cluster1024")
	fsKind := fl.String("fs", "xfs", "file system model: xfs, gpfs, pvfs, local")
	np := fl.Int("np", 8, "number of MPI ranks")
	problem := fl.String("problem", "AMR64", "problem size: AMR64, AMR128, AMR256, AMR512, tiny")
	membudget := fl.Int64("membudget", 0, "host-memory footprint budget in MiB (0 = 16384 default, negative = unlimited; AMR512 needs this raised)")
	backendName := fl.String("backend", "mpiio", "I/O backend: hdf4, mpiio, mpiio-cb, hdf5")
	dumps := fl.Int("dumps", 1, "checkpoint dumps per run")
	refine := fl.Int("refine", 0, "dynamic refinement passes during evolution")
	codec := fl.String("codec", "none", "transparent field compression: none, rle, delta, lzss")
	async := fl.Bool("async", false, "write-behind checkpoint I/O: overlap dumps with the next step's compute")
	autotune := fl.Bool("autotune", false, "tune the MPI-IO hint vector off a short probe run before the main run")
	scrub := fl.Bool("scrub", false, "read-back scrub after each dump, with re-dump and generation-fallback recovery")
	generations := fl.Int("generations", 0, "dump generations the restart fallback scans, newest first (0 = all; needs -scrub)")
	castore := fl.Bool("castore", false, "content-addressed checkpoint store: chunked dumps with cross-generation dedup (not with -backend hdf4)")
	replicas := fl.Int("replicas", 1, "data servers each castore chunk/manifest is replicated on (needs -castore)")
	straggler := fl.Float64("straggler", 1, "degrade one data server of a striped fs by this service-time factor")
	corrupt := fl.Int64("corrupt", 0, "silently corrupt every Nth sizeable checkpoint write (0 = off)")
	trace := fl.Bool("trace", false, "print a Pablo-style I/O characterization of the run")
	if err := fl.Parse(args); err != nil {
		return 2
	}

	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, format+"\n", a...)
		fl.Usage()
		return 2
	}

	switch *machName {
	case "origin2000", "sp2", "chiba", "cluster1024":
	default:
		return fail("unknown machine %q (known: origin2000, sp2, chiba, cluster1024)", *machName)
	}
	if *np < 1 {
		return fail("-np must be >= 1 (got %d)", *np)
	}

	var cfg enzo.Config
	switch *problem {
	case "AMR64":
		cfg = enzo.AMR64()
	case "AMR128":
		cfg = enzo.AMR128()
	case "AMR256":
		cfg = enzo.AMR256()
	case "AMR512":
		cfg = enzo.AMR512()
	case "tiny":
		cfg = enzo.Tiny()
	default:
		return fail("unknown problem %q", *problem)
	}
	switch {
	case *membudget > 0:
		cfg.MemBudget = *membudget << 20
	case *membudget < 0:
		cfg.MemBudget = -1
	}
	cfg.Dumps = *dumps
	cfg.RefineCycles = *refine
	if _, err := compress.Resolve(*codec); err != nil {
		return fail("%v", err)
	}
	cfg.Codec = *codec
	cfg.AsyncIO = *async
	cfg.ScrubOnDump = *scrub
	cfg.Generations = *generations
	if *generations < 0 {
		return fail("-generations must be >= 0 (got %d)", *generations)
	}
	if *generations > 0 && !*scrub {
		return fail("-generations needs -scrub")
	}
	cfg.CAStore = *castore
	cfg.Replicas = *replicas
	if *replicas < 1 {
		return fail("-replicas must be >= 1 (got %d)", *replicas)
	}
	if *replicas > 1 && !*castore {
		return fail("-replicas needs -castore")
	}
	if *castore && *backendName == "hdf4" {
		return fail("-castore does not apply to the hdf4 backend")
	}
	if *straggler < 1 {
		return fail("-straggler must be >= 1 (got %g)", *straggler)
	}
	if *corrupt < 0 {
		return fail("-corrupt must be >= 0 (got %d)", *corrupt)
	}

	backend, err := enzo.BackendByName(*backendName)
	if err != nil {
		return fail("%v", err)
	}

	var rec *iotrace.Recorder
	var wraps []func(pfs.FileSystem) pfs.FileSystem
	// The straggler hook must see the bare striped file system, so it runs
	// before any wrapper is layered on.
	if *straggler > 1 {
		switch *fsKind {
		case "pvfs", "gpfs":
		default:
			return fail("-straggler needs a striped file system (pvfs, gpfs); got %q", *fsKind)
		}
		wraps = append(wraps, func(fs pfs.FileSystem) pfs.FileSystem {
			fs.(pfs.StripeFaultInjector).DegradeDataServer(0, *straggler)
			return fs
		})
	}
	if *corrupt > 0 {
		wraps = append(wraps, func(fs pfs.FileSystem) pfs.FileSystem {
			// Checkpoint files only ("dump..."), sizeable writes only, so
			// the initial-conditions read stays intact; a bounded number of
			// faults keeps recovery (with -scrub) terminating.
			return faultfs.Wrap(fs, faultfs.Config{
				Mode: faultfs.CorruptWrite, EveryN: *corrupt,
				MinBytes: 2048, FileSubstr: "dump", MaxInject: 4,
			})
		})
	}
	if *trace {
		rec = iotrace.NewRecorder()
		wraps = append(wraps, func(fs pfs.FileSystem) pfs.FileSystem { return iotrace.Wrap(fs, rec) })
	}
	var wrap func(pfs.FileSystem) pfs.FileSystem
	if len(wraps) > 0 {
		wrap = func(fs pfs.FileSystem) pfs.FileSystem {
			for _, w := range wraps {
				fs = w(fs)
			}
			return fs
		}
	}
	var tuneDeltas []diag.HintsDelta
	if *autotune {
		var tuned enzo.Config
		tuned, tuneDeltas, _, err = diag.AutoTune(machine.ByName(*machName), *fsKind, *np, cfg, backend)
		if err != nil {
			fmt.Fprintln(stderr, "autotune failed:", err)
			return 1
		}
		cfg = tuned
	}
	res, err := enzo.RunOnceWrapped(machine.ByName(*machName), *fsKind, *np, cfg, backend, wrap)
	if err != nil {
		fmt.Fprintln(stderr, "simulation failed:", err)
		return 1
	}

	fmt.Fprintf(stdout, "problem      %s (%d grids)\n", res.Problem, res.Grids)
	fmt.Fprintf(stdout, "platform     %s / %s, %d ranks\n", *machName, *fsKind, *np)
	fmt.Fprintf(stdout, "backend      %s\n", res.Backend)
	fmt.Fprintf(stdout, "codec        %s\n", res.Codec)
	if *autotune {
		if len(tuneDeltas) == 0 {
			fmt.Fprintln(stdout, "autotune     defaults already optimal (no deltas)")
		}
		for _, d := range tuneDeltas {
			fmt.Fprintf(stdout, "autotune     %s: %s -> %s (%s)\n", d.Param, d.From, d.To, d.Why)
		}
	}
	for _, p := range res.Phases {
		fmt.Fprintf(stdout, "  %-10s %10.3f s\n", p.Name, p.Seconds)
	}
	if *async {
		fmt.Fprintf(stdout, "async dump   exposed %.3f s, hidden %.3f s (%.1f%% of device time hidden)\n",
			res.ExposedWrite, res.HiddenWrite, 100*res.HiddenFraction())
	}
	if *scrub {
		fmt.Fprintf(stdout, "scrub        failures %d, redumps %d, restart fallbacks %d\n",
			res.ScrubFailures, res.Redumps, res.RestartFallbacks)
	}
	if *castore {
		fmt.Fprintf(stdout, "castore      %d chunks put, %d dedup hits; logical %.1f MB, physical %.1f MB, deduped %.1f MB; %d failovers\n",
			res.CASChunkPuts, res.CASChunkHits,
			float64(res.CASLogicalBytes)/(1<<20), float64(res.CASPhysicalBytes)/(1<<20),
			float64(res.CASDedupedBytes)/(1<<20), res.CASFailovers)
	}
	fmt.Fprintf(stdout, "bytes read   %d (%.1f MB)\n", res.BytesRead, float64(res.BytesRead)/(1<<20))
	fmt.Fprintf(stdout, "bytes written%d (%.1f MB)\n", res.BytesWritten, float64(res.BytesWritten)/(1<<20))
	fmt.Fprintf(stdout, "verified     %v\n", res.Verified)
	if rec != nil {
		fmt.Fprintln(stdout)
		rec.Report(stdout)
		fmt.Fprintln(stdout)
		rec.ReportPatterns(stdout)
	}
	if !res.Verified {
		return 1
	}
	return 0
}
