// Command enzosim runs one simulated ENZO configuration — platform, file
// system, processor count, problem size and I/O backend — and prints the
// timed phases, byte accounting and verification status.
//
// Usage:
//
//	enzosim [-machine origin2000|sp2|chiba] [-fs xfs|gpfs|pvfs|local]
//	        [-np N] [-problem AMR64|AMR128|AMR256|tiny]
//	        [-backend hdf4|mpiio|mpiio-cb|hdf5] [-dumps N]
//	        [-codec none|rle|delta|lzss] [-async]
//
// Times are deterministic virtual seconds on the modelled platform, not
// wall-clock time of the simulator.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/compress"
	"repro/internal/enzo"
	"repro/internal/iotrace"
	"repro/internal/machine"
	"repro/internal/pfs"
)

func main() {
	machName := flag.String("machine", "origin2000", "platform model: origin2000, sp2, chiba")
	fsKind := flag.String("fs", "xfs", "file system model: xfs, gpfs, pvfs, local")
	np := flag.Int("np", 8, "number of MPI ranks")
	problem := flag.String("problem", "AMR64", "problem size: AMR64, AMR128, AMR256, tiny")
	backendName := flag.String("backend", "mpiio", "I/O backend: hdf4, mpiio, mpiio-cb, hdf5")
	dumps := flag.Int("dumps", 1, "checkpoint dumps per run")
	refine := flag.Int("refine", 0, "dynamic refinement passes during evolution")
	codec := flag.String("codec", "none", "transparent field compression: none, rle, delta, lzss")
	async := flag.Bool("async", false, "write-behind checkpoint I/O: overlap dumps with the next step's compute")
	trace := flag.Bool("trace", false, "print a Pablo-style I/O characterization of the run")
	flag.Parse()

	var cfg enzo.Config
	switch *problem {
	case "AMR64":
		cfg = enzo.AMR64()
	case "AMR128":
		cfg = enzo.AMR128()
	case "AMR256":
		cfg = enzo.AMR256()
	case "tiny":
		cfg = enzo.Tiny()
	default:
		fmt.Fprintf(os.Stderr, "unknown problem %q\n", *problem)
		os.Exit(2)
	}
	cfg.Dumps = *dumps
	cfg.RefineCycles = *refine
	if _, err := compress.Resolve(*codec); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.Codec = *codec
	cfg.AsyncIO = *async

	backend, err := enzo.BackendByName(*backendName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var rec *iotrace.Recorder
	var wrap func(pfs.FileSystem) pfs.FileSystem
	if *trace {
		rec = iotrace.NewRecorder()
		wrap = func(fs pfs.FileSystem) pfs.FileSystem { return iotrace.Wrap(fs, rec) }
	}
	res, err := enzo.RunOnceWrapped(machine.ByName(*machName), *fsKind, *np, cfg, backend, wrap)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulation failed:", err)
		os.Exit(1)
	}

	fmt.Printf("problem      %s (%d grids)\n", res.Problem, res.Grids)
	fmt.Printf("platform     %s / %s, %d ranks\n", *machName, *fsKind, *np)
	fmt.Printf("backend      %s\n", res.Backend)
	fmt.Printf("codec        %s\n", res.Codec)
	for _, p := range res.Phases {
		fmt.Printf("  %-10s %10.3f s\n", p.Name, p.Seconds)
	}
	if *async {
		fmt.Printf("async dump   exposed %.3f s, hidden %.3f s (%.1f%% of device time hidden)\n",
			res.ExposedWrite, res.HiddenWrite, 100*res.HiddenFraction())
	}
	fmt.Printf("bytes read   %d (%.1f MB)\n", res.BytesRead, float64(res.BytesRead)/(1<<20))
	fmt.Printf("bytes written%d (%.1f MB)\n", res.BytesWritten, float64(res.BytesWritten)/(1<<20))
	fmt.Printf("verified     %v\n", res.Verified)
	if rec != nil {
		fmt.Println()
		rec.Report(os.Stdout)
		fmt.Println()
		rec.ReportPatterns(os.Stdout)
	}
	if !res.Verified {
		os.Exit(1)
	}
}
