package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestBadFlagsRejected(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"bad machine", []string{"-machine", "bluegene"}},
		{"zero ranks", []string{"-np", "0"}},
		{"bad codec", []string{"-codec", "zip"}},
		{"bad backend", []string{"-backend", "netcdf"}},
		{"bad problem", []string{"-problem", "AMR1024"}},
		{"negative generations", []string{"-generations", "-1"}},
		{"generations without scrub", []string{"-generations", "2"}},
		{"straggler below one", []string{"-straggler", "0.5"}},
		{"straggler on plain fs", []string{"-fs", "xfs", "-straggler", "10"}},
		{"negative corrupt", []string{"-corrupt", "-3"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), "Usage of enzosim") {
				t.Fatalf("no usage message on stderr:\n%s", stderr.String())
			}
		})
	}
}

// TestAMR512NeedsMemBudget: the footprint guard must stop an AMR512 run
// before it allocates anything, pointing at the -membudget escape hatch.
func TestAMR512NeedsMemBudget(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-problem", "AMR512"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-membudget") {
		t.Fatalf("guard error does not mention -membudget:\n%s", stderr.String())
	}
}

func TestTinyRunSucceeds(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-problem", "tiny", "-np", "4", "-scrub"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	for _, want := range []string{"verified     true", "scrub        failures 0"} {
		if !strings.Contains(stdout.String(), want) {
			t.Fatalf("stdout missing %q:\n%s", want, stdout.String())
		}
	}
}

func TestTinyFaultRunRecovers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-problem", "tiny", "-np", "4", "-fs", "pvfs", "-machine", "chiba",
		"-scrub", "-corrupt", "3", "-straggler", "2"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "verified     true") {
		t.Fatalf("faulted run did not verify:\n%s", stdout.String())
	}
}
