package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestBadFlagsRejected(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"bad experiment", []string{"-exp", "fig99"}},
		{"bad codec", []string{"-codec", "zip"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), "Usage of iobench") {
				t.Fatalf("no usage message on stderr:\n%s", stderr.String())
			}
		})
	}
}

func TestTable1Runs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "table1", "-quick"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Table 1") {
		t.Fatalf("missing Table 1 output:\n%s", stdout.String())
	}
}
