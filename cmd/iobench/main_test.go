package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// TestUsageListsEveryRegisteredSweep pins the -exp help text and the
// unknown-experiment error to the experiments registry: registering a new
// sweep without it appearing in the usage (or vice versa) fails here
// instead of drifting silently.
func TestUsageListsEveryRegisteredSweep(t *testing.T) {
	names := append(experiments.SweepNames(), "all")
	usage := expUsage()
	for _, name := range names {
		if !strings.Contains(usage, name) {
			t.Errorf("-exp usage %q does not mention registered sweep %q", usage, name)
		}
	}
	if len(validExps()) != len(names) {
		t.Fatalf("validExps() = %v, want registry + all = %v", validExps(), names)
	}

	// The rejection path must list the registered names too.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "nonesuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	for _, name := range names {
		if !strings.Contains(stderr.String(), name) {
			t.Errorf("unknown-experiment error does not list %q:\n%s", name, stderr.String())
		}
	}
}

// TestRegistryTitlesComplete: every registered sweep must carry a section
// heading — run() prints SweepTitle(name) verbatim.
func TestRegistryTitlesComplete(t *testing.T) {
	for _, s := range experiments.Registry() {
		if s.Title == "" {
			t.Errorf("registered sweep %q has no title", s.Name)
		}
		if experiments.SweepTitle(s.Name) != s.Title {
			t.Errorf("SweepTitle(%q) mismatch", s.Name)
		}
	}
	if experiments.SweepTitle("nonesuch") != "" {
		t.Error("SweepTitle of unknown sweep should be empty")
	}
}

func TestBadFlagsRejected(t *testing.T) {
	// Profile outputs pointing into a directory that does not exist must
	// fail fast with exit 2 before any simulation runs (no usage text —
	// the flag itself is fine, its value is not).
	noDir := filepath.Join(t.TempDir(), "no-such-dir", "out.pb")
	cases := []struct {
		name      string
		args      []string
		wantUsage bool
	}{
		{"unknown flag", []string{"-bogus"}, true},
		{"bad experiment", []string{"-exp", "fig99"}, true},
		{"bad codec", []string{"-codec", "zip"}, true},
		{"bad cpuprofile path", []string{"-exp", "table1", "-quick", "-cpuprofile", noDir}, false},
		{"bad memprofile path", []string{"-exp", "table1", "-quick", "-memprofile", noDir}, false},
		{"bad exectrace path", []string{"-exp", "table1", "-quick", "-exectrace", noDir}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr.String())
			}
			if tc.wantUsage && !strings.Contains(stderr.String(), "Usage of iobench") {
				t.Fatalf("no usage message on stderr:\n%s", stderr.String())
			}
			if !tc.wantUsage && stderr.Len() == 0 {
				t.Fatal("no error message on stderr")
			}
		})
	}
}

// TestProfileFlagsWriteFiles runs the smallest sweep with all three
// profiling outputs enabled and asserts each file lands non-empty.
func TestProfileFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pb")
	mem := filepath.Join(dir, "mem.pb")
	tr := filepath.Join(dir, "trace.out")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-exp", "table1", "-quick",
		"-cpuprofile", cpu, "-memprofile", mem, "-exectrace", tr}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	for _, path := range []string{cpu, mem, tr} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile output missing: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile output %s is empty", path)
		}
	}
}

func TestTable1Runs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "table1", "-quick"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Table 1") {
		t.Fatalf("missing Table 1 output:\n%s", stdout.String())
	}
}
