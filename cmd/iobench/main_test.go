package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// TestUsageListsEveryRegisteredSweep pins the -exp help text and the
// unknown-experiment error to the experiments registry: registering a new
// sweep without it appearing in the usage (or vice versa) fails here
// instead of drifting silently.
func TestUsageListsEveryRegisteredSweep(t *testing.T) {
	names := append(experiments.SweepNames(), "all")
	usage := expUsage()
	for _, name := range names {
		if !strings.Contains(usage, name) {
			t.Errorf("-exp usage %q does not mention registered sweep %q", usage, name)
		}
	}
	if len(validExps()) != len(names) {
		t.Fatalf("validExps() = %v, want registry + all = %v", validExps(), names)
	}

	// The rejection path must list the registered names too.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "nonesuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	for _, name := range names {
		if !strings.Contains(stderr.String(), name) {
			t.Errorf("unknown-experiment error does not list %q:\n%s", name, stderr.String())
		}
	}
}

// TestRegistryTitlesComplete: every registered sweep must carry a section
// heading — run() prints SweepTitle(name) verbatim.
func TestRegistryTitlesComplete(t *testing.T) {
	for _, s := range experiments.Registry() {
		if s.Title == "" {
			t.Errorf("registered sweep %q has no title", s.Name)
		}
		if experiments.SweepTitle(s.Name) != s.Title {
			t.Errorf("SweepTitle(%q) mismatch", s.Name)
		}
	}
	if experiments.SweepTitle("nonesuch") != "" {
		t.Error("SweepTitle of unknown sweep should be empty")
	}
}

func TestBadFlagsRejected(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"bad experiment", []string{"-exp", "fig99"}},
		{"bad codec", []string{"-codec", "zip"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), "Usage of iobench") {
				t.Fatalf("no usage message on stderr:\n%s", stderr.String())
			}
		})
	}
}

func TestTable1Runs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "table1", "-quick"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Table 1") {
		t.Fatalf("missing Table 1 output:\n%s", stdout.String())
	}
}
