// Command iobench regenerates the paper's evaluation: Table 1 and Figures
// 6-10, printing each as a table of deterministic virtual-time
// measurements, plus the repository's extension sweeps (codecs, overlap,
// faults).
//
// Usage:
//
//	iobench [-exp table1|fig6|fig7|fig8|fig9|fig10|codecs|overlap|reads|faults|all]
//	        [-quick] [-codec none|rle|delta|lzss] [-async]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/compress"
	"repro/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

var validExps = []string{"table1", "fig6", "fig7", "fig8", "fig9", "fig10", "codecs", "overlap", "reads", "faults", "all"}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("iobench", flag.ContinueOnError)
	fl.SetOutput(stderr)
	exp := fl.String("exp", "all", "experiment to run: table1, fig6..fig10, codecs, overlap, reads, faults, or all")
	quick := fl.Bool("quick", false, "shrink problems for a fast smoke run")
	chart := fl.Bool("chart", false, "also render each figure as ASCII bar charts")
	tracedir := fl.String("tracedir", "", "write per-case Perfetto timelines and counter reports into this directory")
	codec := fl.String("codec", "none", "run the figure cases with transparent field compression: none, rle, delta, lzss")
	async := fl.Bool("async", false, "run the figure cases with the write-behind dump pipeline")
	diagnose := fl.Bool("diagnose", false, "diagnose every figure/codec case and print its findings after each sweep")
	if err := fl.Parse(args); err != nil {
		return 2
	}

	valid := false
	for _, name := range validExps {
		if *exp == name {
			valid = true
		}
	}
	if !valid {
		fmt.Fprintf(stderr, "unknown experiment %q (want one of %v)\n", *exp, validExps)
		fl.Usage()
		return 2
	}
	if _, err := compress.Resolve(*codec); err != nil {
		fmt.Fprintln(stderr, err)
		fl.Usage()
		return 2
	}
	o := experiments.Options{Quick: *quick, TraceDir: *tracedir, Codec: *codec, Async: *async}
	var findings []experiments.CaseFindings
	if *diagnose {
		o.DiagnoseSink = func(cf experiments.CaseFindings) { findings = append(findings, cf) }
	}
	flushFindings := func() {
		if len(findings) == 0 {
			return
		}
		experiments.PrintFindings(stdout, findings)
		fmt.Fprintln(stdout)
		findings = findings[:0]
	}
	type driver struct {
		name  string
		title string
		fn    func(experiments.Options) ([]experiments.Row, error)
	}
	drivers := []driver{
		{"fig6", "Figure 6: ENZO I/O on SGI Origin2000 with XFS (HDF4 vs MPI-IO)", experiments.Figure6},
		{"fig7", "Figure 7: ENZO I/O on IBM SP-2 with GPFS (HDF4 vs MPI-IO)", experiments.Figure7},
		{"fig8", "Figure 8: ENZO I/O on Linux cluster with PVFS over fast Ethernet", experiments.Figure8},
		{"fig9", "Figure 9: ENZO I/O on Linux cluster with node-local disks (PVFS interface)", experiments.Figure9},
		{"fig10", "Figure 10: HDF5 vs MPI-IO write performance on SGI Origin2000", experiments.Figure10},
	}

	if *exp == "table1" || *exp == "all" {
		fmt.Fprintln(stdout, "Table 1: Amount of data read/written by the ENZO application")
		experiments.PrintTable1(stdout, experiments.Table1(o))
		fmt.Fprintln(stdout)
	}
	if *exp == "overlap" || *exp == "all" {
		fmt.Fprintln(stdout, "Overlap sweep: write-behind checkpoint I/O vs synchronous dumps (Chiba City, AMR128, np=8)")
		rows, err := experiments.OverlapSweep(o)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		experiments.PrintOverlapSweep(stdout, rows)
		fmt.Fprintln(stdout)
	}
	if *exp == "codecs" || *exp == "all" {
		fmt.Fprintln(stdout, "Codec sweep: transparent compression vs file system (Chiba City, MPI-IO, AMR128, np=8)")
		rows, err := experiments.CodecSweep(o)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		experiments.PrintCodecSweep(stdout, rows)
		fmt.Fprintln(stdout)
		flushFindings()
	}
	if *exp == "reads" || *exp == "all" {
		fmt.Fprintln(stdout, "Read sweep: parallel restart read path vs the HDF4 baseline (Chiba City, AMR128, np=8)")
		rows, err := experiments.ReadSweep(o)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		experiments.PrintReadSweep(stdout, rows)
		fmt.Fprintln(stdout)
	}
	if *exp == "faults" || *exp == "all" {
		fmt.Fprintln(stdout, "Fault sweep: straggler data servers and silent-corruption recovery (AMR64, np=8)")
		stragglers, recovery, err := experiments.FaultSweep(o)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		experiments.PrintStragglerSweep(stdout, stragglers)
		fmt.Fprintln(stdout)
		experiments.PrintRecoverySweep(stdout, recovery)
		fmt.Fprintln(stdout)
	}
	for _, d := range drivers {
		if *exp != "all" && *exp != d.name {
			continue
		}
		fmt.Fprintln(stdout, d.title)
		rows, err := d.fn(o)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		experiments.PrintRows(stdout, rows)
		fmt.Fprintln(stdout)
		flushFindings()
		if *chart {
			experiments.RenderChart(stdout, rows)
		}
	}
	return 0
}
