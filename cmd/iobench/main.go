// Command iobench regenerates the paper's evaluation: Table 1 and Figures
// 6-10, printing each as a table of deterministic virtual-time
// measurements, plus the repository's extension sweeps (codecs, overlap,
// reads, faults, dedup).
//
// Usage:
//
//	iobench [-exp <sweep>|all] [-quick] [-codec none|rle|delta|lzss] [-async] [-autotune]
//
// The sweep names come from the experiments registry; -exp with an unknown
// name lists them.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"

	"repro/internal/compress"
	"repro/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// validExps is the registry's sweep list plus the run-everything alias;
// TestUsageListsEveryRegisteredSweep holds the -exp usage text to it.
func validExps() []string {
	return append(experiments.SweepNames(), "all")
}

func expUsage() string {
	return "experiment to run: " + strings.Join(validExps(), ", ")
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("iobench", flag.ContinueOnError)
	fl.SetOutput(stderr)
	exp := fl.String("exp", "all", expUsage())
	quick := fl.Bool("quick", false, "shrink problems for a fast smoke run")
	chart := fl.Bool("chart", false, "also render each figure as ASCII bar charts")
	tracedir := fl.String("tracedir", "", "write per-case Perfetto timelines and counter reports into this directory")
	codec := fl.String("codec", "none", "run the figure cases with transparent field compression: none, rle, delta, lzss")
	async := fl.Bool("async", false, "run the figure cases with the write-behind dump pipeline")
	autotune := fl.Bool("autotune", false, "run the figure cases with the probe-based MPI-IO hint autotuner")
	diagnose := fl.Bool("diagnose", false, "diagnose every figure/codec case and print its findings after each sweep")
	cpuprofile := fl.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := fl.String("memprofile", "", "write an allocation profile to this file at exit")
	exectrace := fl.String("exectrace", "", "write a runtime execution trace of the run to this file")
	if err := fl.Parse(args); err != nil {
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *exectrace != "" {
		f, err := os.Create(*exectrace)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 2
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 2
		}
		defer trace.Stop()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 2
		}
		defer func() {
			runtime.GC() // flush final allocation statistics
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(stderr, "error:", err)
			}
			f.Close()
		}()
	}

	valid := false
	for _, name := range validExps() {
		if *exp == name {
			valid = true
		}
	}
	if !valid {
		fmt.Fprintf(stderr, "unknown experiment %q (want one of %v)\n", *exp, validExps())
		fl.Usage()
		return 2
	}
	if _, err := compress.Resolve(*codec); err != nil {
		fmt.Fprintln(stderr, err)
		fl.Usage()
		return 2
	}
	o := experiments.Options{Quick: *quick, TraceDir: *tracedir, Codec: *codec, Async: *async, AutoTune: *autotune}
	var findings []experiments.CaseFindings
	if *diagnose {
		o.DiagnoseSink = func(cf experiments.CaseFindings) { findings = append(findings, cf) }
	}
	flushFindings := func() {
		if len(findings) == 0 {
			return
		}
		experiments.PrintFindings(stdout, findings)
		fmt.Fprintln(stdout)
		findings = findings[:0]
	}
	type driver struct {
		name string
		fn   func(experiments.Options) ([]experiments.Row, error)
	}
	drivers := []driver{
		{"fig6", experiments.Figure6},
		{"fig7", experiments.Figure7},
		{"fig8", experiments.Figure8},
		{"fig9", experiments.Figure9},
		{"fig10", experiments.Figure10},
	}

	if *exp == "table1" || *exp == "all" {
		fmt.Fprintln(stdout, experiments.SweepTitle("table1"))
		experiments.PrintTable1(stdout, experiments.Table1(o))
		fmt.Fprintln(stdout)
	}
	if *exp == "overlap" || *exp == "all" {
		fmt.Fprintln(stdout, experiments.SweepTitle("overlap"))
		rows, err := experiments.OverlapSweep(o)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		experiments.PrintOverlapSweep(stdout, rows)
		fmt.Fprintln(stdout)
	}
	if *exp == "codecs" || *exp == "all" {
		fmt.Fprintln(stdout, experiments.SweepTitle("codecs"))
		rows, err := experiments.CodecSweep(o)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		experiments.PrintCodecSweep(stdout, rows)
		fmt.Fprintln(stdout)
		flushFindings()
	}
	if *exp == "reads" || *exp == "all" {
		fmt.Fprintln(stdout, experiments.SweepTitle("reads"))
		rows, err := experiments.ReadSweep(o)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		experiments.PrintReadSweep(stdout, rows)
		fmt.Fprintln(stdout)
	}
	if *exp == "faults" || *exp == "all" {
		fmt.Fprintln(stdout, experiments.SweepTitle("faults"))
		stragglers, recovery, err := experiments.FaultSweep(o)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		experiments.PrintStragglerSweep(stdout, stragglers)
		fmt.Fprintln(stdout)
		experiments.PrintRecoverySweep(stdout, recovery)
		fmt.Fprintln(stdout)
	}
	if *exp == "dedup" || *exp == "all" {
		fmt.Fprintln(stdout, experiments.SweepTitle("dedup"))
		rows, err := experiments.DedupSweep(o)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		experiments.PrintDedupSweep(stdout, rows)
		fmt.Fprintln(stdout)
	}
	if *exp == "scale" || *exp == "all" {
		fmt.Fprintln(stdout, experiments.SweepTitle("scale"))
		rows, err := experiments.ScaleSweep(o)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		experiments.PrintScaleSweep(stdout, rows)
		fmt.Fprintln(stdout)
	}
	if *exp == "hints" || *exp == "all" {
		fmt.Fprintln(stdout, experiments.SweepTitle("hints"))
		rows, err := experiments.HintsSweep(o)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		experiments.PrintHintsSweep(stdout, rows)
		fmt.Fprintln(stdout)
	}
	if *exp == "tenants" || *exp == "all" {
		fmt.Fprintln(stdout, experiments.SweepTitle("tenants"))
		rows, err := experiments.MultiTenantSweep(o)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		experiments.PrintTenantSweep(stdout, rows)
		fmt.Fprintln(stdout)
	}
	for _, d := range drivers {
		if *exp != "all" && *exp != d.name {
			continue
		}
		fmt.Fprintln(stdout, experiments.SweepTitle(d.name))
		rows, err := d.fn(o)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		experiments.PrintRows(stdout, rows)
		fmt.Fprintln(stdout)
		flushFindings()
		if *chart {
			experiments.RenderChart(stdout, rows)
		}
	}
	return 0
}
