// Command iobench regenerates the paper's evaluation: Table 1 and Figures
// 6-10, printing each as a table of deterministic virtual-time
// measurements.
//
// Usage:
//
//	iobench [-exp table1|fig6|fig7|fig8|fig9|fig10|codecs|overlap|all]
//	        [-quick] [-codec none|rle|delta|lzss] [-async]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/compress"
	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1, fig6..fig10, or all")
	quick := flag.Bool("quick", false, "shrink problems for a fast smoke run")
	chart := flag.Bool("chart", false, "also render each figure as ASCII bar charts")
	tracedir := flag.String("tracedir", "", "write per-case Perfetto timelines and counter reports into this directory")
	codec := flag.String("codec", "none", "run the figure cases with transparent field compression: none, rle, delta, lzss")
	async := flag.Bool("async", false, "run the figure cases with the write-behind dump pipeline")
	flag.Parse()

	if _, err := compress.Resolve(*codec); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	o := experiments.Options{Quick: *quick, TraceDir: *tracedir, Codec: *codec, Async: *async}
	type driver struct {
		name  string
		title string
		fn    func(experiments.Options) ([]experiments.Row, error)
	}
	drivers := []driver{
		{"fig6", "Figure 6: ENZO I/O on SGI Origin2000 with XFS (HDF4 vs MPI-IO)", experiments.Figure6},
		{"fig7", "Figure 7: ENZO I/O on IBM SP-2 with GPFS (HDF4 vs MPI-IO)", experiments.Figure7},
		{"fig8", "Figure 8: ENZO I/O on Linux cluster with PVFS over fast Ethernet", experiments.Figure8},
		{"fig9", "Figure 9: ENZO I/O on Linux cluster with node-local disks (PVFS interface)", experiments.Figure9},
		{"fig10", "Figure 10: HDF5 vs MPI-IO write performance on SGI Origin2000", experiments.Figure10},
	}

	if *exp == "table1" || *exp == "all" {
		fmt.Println("Table 1: Amount of data read/written by the ENZO application")
		experiments.PrintTable1(os.Stdout, experiments.Table1(o))
		fmt.Println()
	}
	if *exp == "overlap" || *exp == "all" {
		fmt.Println("Overlap sweep: write-behind checkpoint I/O vs synchronous dumps (Chiba City, AMR128, np=8)")
		rows, err := experiments.OverlapSweep(o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		experiments.PrintOverlapSweep(os.Stdout, rows)
		fmt.Println()
	}
	if *exp == "codecs" || *exp == "all" {
		fmt.Println("Codec sweep: transparent compression vs file system (Chiba City, MPI-IO, AMR128, np=8)")
		rows, err := experiments.CodecSweep(o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		experiments.PrintCodecSweep(os.Stdout, rows)
		fmt.Println()
	}
	for _, d := range drivers {
		if *exp != "all" && *exp != d.name {
			continue
		}
		fmt.Println(d.title)
		rows, err := d.fn(o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		experiments.PrintRows(os.Stdout, rows)
		fmt.Println()
		if *chart {
			experiments.RenderChart(os.Stdout, rows)
		}
	}
}
