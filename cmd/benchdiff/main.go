// Command benchdiff is the repository's deterministic benchmark
// regression gate. The simulation is virtual-time: identical code must
// produce bit-identical results on every machine, so the committed
// baselines (BENCH_baseline.json, BENCH_faults.json, BENCH_reads.json,
// BENCH_dedup.json, BENCH_scale.json, BENCH_hints.json,
// BENCH_tenants.json) are compared with EXACT equality — any drift,
// however small, means the model's timing changed and must be either
// fixed or consciously re-baselined.
//
// Usage:
//
//	benchdiff              compare a fresh run against the baselines
//	benchdiff -update      re-run and overwrite all the baselines
//	benchdiff -checkdedup  assert the committed dedup baseline's invariant
//	                       (castore device bytes strictly below plain at
//	                       retention depth >= 2) without running anything
//	benchdiff -checkhints  assert the committed hints baseline's invariant
//	                       (autotuned total I/O time never above the
//	                       defaults, strictly below on at least one pvfs
//	                       row) without running anything
//	benchdiff -checktenants  assert the committed tenants baseline's
//	                       invariant (fair queueing's worst contended
//	                       slowdown never above FIFO's, strictly below on
//	                       at least one pvfs fleet) without running
//	                       anything
//
// The benchmark set: Table 1 volumes (all problems), the codec, overlap
// and restart-read sweeps at AMR128/np=8, the fault sweep (stragglers
// and corruption recovery) at AMR64/np=8, the dedup sweep
// (content-addressed store vs plain dumps) at AMR64+AMR128/np=8, the
// scale sweep (virtual time and deterministic events/op vs rank count) at
// AMR128/AMR256 with np up to 256, and the hints sweep (autotuned MPI-IO
// hint vector vs defaults) across three machines x pvfs/gpfs x
// mpiio/hdf5 at AMR64/np=8.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"reflect"

	"repro/internal/experiments"
)

// Baseline is the serialized benchmark result set of the main sweeps.
type Baseline struct {
	Table1  []experiments.Table1Row
	Codecs  []experiments.Row
	Overlap []experiments.OverlapRow
}

// Faults is the serialized fault-sweep result set, kept in its own file so
// fault-model changes re-baseline separately from the main sweeps.
type Faults struct {
	Stragglers []experiments.StragglerRow
	Recovery   []experiments.RecoveryRow
}

// Reads is the serialized restart-read sweep, in its own file so read-path
// changes re-baseline separately.
type Reads struct {
	Reads []experiments.ReadRow
}

// Dedup is the serialized dedup sweep, in its own file so castore changes
// re-baseline separately.
type Dedup struct {
	Dedup []experiments.DedupRow
}

// Scale is the serialized scale sweep, in its own file so engine-scale
// changes re-baseline separately. The wall-clock events/sec column is
// stripped before writing or comparing: only the virtual times and the
// deterministic events/op counts gate.
type Scale struct {
	Scale []experiments.ScaleRow
}

// Hints is the serialized hints sweep, in its own file so autotuner
// changes re-baseline separately.
type Hints struct {
	Hints []experiments.HintsRow
}

// Tenants is the serialized multi-tenant sweep, in its own file so
// scheduling-policy and burst-buffer changes re-baseline separately.
type Tenants struct {
	Tenants []experiments.TenantRow
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fl.SetOutput(stderr)
	update := fl.Bool("update", false, "overwrite the baselines with a fresh run instead of comparing")
	basePath := fl.String("baseline", "BENCH_baseline.json", "main benchmark baseline file")
	faultPath := fl.String("faults", "BENCH_faults.json", "fault-sweep baseline file")
	readPath := fl.String("reads", "BENCH_reads.json", "restart-read sweep baseline file")
	dedupPath := fl.String("dedup", "BENCH_dedup.json", "dedup sweep baseline file")
	scalePath := fl.String("scale", "BENCH_scale.json", "scale sweep baseline file")
	hintsPath := fl.String("hints", "BENCH_hints.json", "hints sweep baseline file")
	tenantsPath := fl.String("tenants", "BENCH_tenants.json", "multi-tenant sweep baseline file")
	checkDedup := fl.Bool("checkdedup", false, "only check the committed dedup baseline's savings invariant (no simulations)")
	checkHints := fl.Bool("checkhints", false, "only check the committed hints baseline's tuned-beats-default invariant (no simulations)")
	checkTenants := fl.Bool("checktenants", false, "only check the committed tenants baseline's fairness invariant (no simulations)")
	if err := fl.Parse(args); err != nil {
		return 2
	}
	if fl.NArg() != 0 {
		fmt.Fprintf(stderr, "unexpected arguments: %v\n", fl.Args())
		fl.Usage()
		return 2
	}

	if *checkDedup {
		var baseDedup Dedup
		if err := readJSON(*dedupPath, &baseDedup); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		if problems := checkDedupInvariant(baseDedup.Dedup); len(problems) > 0 {
			fmt.Fprintf(stdout, "DEDUP INVARIANT VIOLATED in %s:\n", *dedupPath)
			for _, p := range problems {
				fmt.Fprintln(stdout, " ", p)
			}
			return 1
		}
		fmt.Fprintf(stdout, "dedup baseline ok: castore device bytes strictly below plain at every depth >= 2\n")
		return 0
	}

	if *checkHints {
		var baseHints Hints
		if err := readJSON(*hintsPath, &baseHints); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		if problems := checkHintsInvariant(baseHints.Hints); len(problems) > 0 {
			fmt.Fprintf(stdout, "HINTS INVARIANT VIOLATED in %s:\n", *hintsPath)
			for _, p := range problems {
				fmt.Fprintln(stdout, " ", p)
			}
			return 1
		}
		fmt.Fprintf(stdout, "hints baseline ok: tuned I/O time never above the defaults, strictly below on pvfs\n")
		return 0
	}

	if *checkTenants {
		var baseTenants Tenants
		if err := readJSON(*tenantsPath, &baseTenants); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		if problems := checkTenantsInvariant(baseTenants.Tenants); len(problems) > 0 {
			fmt.Fprintf(stdout, "TENANTS INVARIANT VIOLATED in %s:\n", *tenantsPath)
			for _, p := range problems {
				fmt.Fprintln(stdout, " ", p)
			}
			return 1
		}
		fmt.Fprintf(stdout, "tenants baseline ok: fair queueing never worsens, and on pvfs strictly improves, the worst contended slowdown\n")
		return 0
	}

	o := experiments.Options{}
	fmt.Fprintln(stderr, "running table1...")
	table1 := experiments.Table1(o)
	fmt.Fprintln(stderr, "running codec sweep (AMR128, np=8)...")
	codecs, err := experiments.CodecSweep(o)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	fmt.Fprintln(stderr, "running overlap sweep (AMR128, np=8)...")
	overlap, err := experiments.OverlapSweep(o)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	fmt.Fprintln(stderr, "running read sweep (AMR128, np=8)...")
	reads, err := experiments.ReadSweep(o)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	fmt.Fprintln(stderr, "running fault sweep (AMR64, np=8)...")
	stragglers, recovery, err := experiments.FaultSweep(o)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	fmt.Fprintln(stderr, "running dedup sweep (AMR64+AMR128, np=8)...")
	dedup, err := experiments.DedupSweep(o)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	fmt.Fprintln(stderr, "running scale sweep (AMR128/AMR256, np=8-256)...")
	scale, err := experiments.ScaleSweep(o)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	fmt.Fprintln(stderr, "running hints sweep (AMR64, np=8)...")
	hints, err := experiments.HintsSweep(o)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	fmt.Fprintln(stderr, "running multi-tenant sweep (fifo vs fair, np=4-8)...")
	tenants, err := experiments.MultiTenantSweep(o)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	fresh := Baseline{Table1: table1, Codecs: codecs, Overlap: overlap}
	freshFaults := Faults{Stragglers: stragglers, Recovery: recovery}
	freshReads := Reads{Reads: reads}
	freshDedup := Dedup{Dedup: dedup}
	freshScale := Scale{Scale: experiments.StripWallClock(scale)}
	freshHints := Hints{Hints: hints}
	freshTenants := Tenants{Tenants: tenants}
	if problems := checkDedupInvariant(dedup); len(problems) > 0 {
		fmt.Fprintln(stdout, "DEDUP INVARIANT VIOLATED in the fresh sweep:")
		for _, p := range problems {
			fmt.Fprintln(stdout, " ", p)
		}
		return 1
	}
	if problems := checkHintsInvariant(hints); len(problems) > 0 {
		fmt.Fprintln(stdout, "HINTS INVARIANT VIOLATED in the fresh sweep:")
		for _, p := range problems {
			fmt.Fprintln(stdout, " ", p)
		}
		return 1
	}
	if problems := checkTenantsInvariant(tenants); len(problems) > 0 {
		fmt.Fprintln(stdout, "TENANTS INVARIANT VIOLATED in the fresh sweep:")
		for _, p := range problems {
			fmt.Fprintln(stdout, " ", p)
		}
		return 1
	}

	if *update {
		if err := writeJSON(*basePath, fresh); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		if err := writeJSON(*faultPath, freshFaults); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		if err := writeJSON(*readPath, freshReads); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		if err := writeJSON(*dedupPath, freshDedup); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		if err := writeJSON(*scalePath, freshScale); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		if err := writeJSON(*hintsPath, freshHints); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		if err := writeJSON(*tenantsPath, freshTenants); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		fmt.Fprintf(stdout, "baselines updated: %s, %s, %s, %s, %s, %s, %s\n", *basePath, *faultPath, *readPath, *dedupPath, *scalePath, *hintsPath, *tenantsPath)
		return 0
	}

	var base Baseline
	if err := readJSON(*basePath, &base); err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	var baseFaults Faults
	if err := readJSON(*faultPath, &baseFaults); err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	var baseReads Reads
	if err := readJSON(*readPath, &baseReads); err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	var baseDedup Dedup
	if err := readJSON(*dedupPath, &baseDedup); err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	var baseScale Scale
	if err := readJSON(*scalePath, &baseScale); err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	var baseHints Hints
	if err := readJSON(*hintsPath, &baseHints); err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	var baseTenants Tenants
	if err := readJSON(*tenantsPath, &baseTenants); err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	var drift []string
	drift = append(drift, CompareRows("table1", base.Table1, fresh.Table1)...)
	drift = append(drift, CompareRows("codecs", base.Codecs, fresh.Codecs)...)
	drift = append(drift, CompareRows("overlap", base.Overlap, fresh.Overlap)...)
	drift = append(drift, CompareRows("faults/stragglers", baseFaults.Stragglers, freshFaults.Stragglers)...)
	drift = append(drift, CompareRows("faults/recovery", baseFaults.Recovery, freshFaults.Recovery)...)
	drift = append(drift, CompareRows("reads", baseReads.Reads, freshReads.Reads)...)
	drift = append(drift, CompareRows("dedup", baseDedup.Dedup, freshDedup.Dedup)...)
	drift = append(drift, CompareRows("scale", baseScale.Scale, freshScale.Scale)...)
	drift = append(drift, CompareRows("hints", baseHints.Hints, freshHints.Hints)...)
	drift = append(drift, CompareRows("tenants", baseTenants.Tenants, freshTenants.Tenants)...)
	if len(drift) > 0 {
		fmt.Fprintf(stdout, "BENCHMARK DRIFT: %d difference(s) against %s / %s / %s / %s / %s / %s / %s\n\n",
			len(drift), *basePath, *faultPath, *readPath, *dedupPath, *scalePath, *hintsPath, *tenantsPath)
		for _, d := range drift {
			fmt.Fprintln(stdout, d)
		}
		fmt.Fprintln(stdout, "\nIf the change is intended, re-baseline with: go run ./cmd/benchdiff -update")
		return 1
	}
	fmt.Fprintln(stdout, "benchmarks match the baselines exactly")
	return 0
}

// checkDedupInvariant asserts the dedup sweep's headline claim: every
// unreplicated castore row at retention depth >= 2 lands strictly fewer
// device bytes than the plain row of the same case. An empty row set is a
// violation — the gate must never pass vacuously.
func checkDedupInvariant(rows []experiments.DedupRow) []string {
	type key struct {
		Machine, FS, Problem string
		Depth                int
	}
	plain := make(map[key]experiments.DedupRow)
	for _, r := range rows {
		if !r.CAStore {
			plain[key{r.Machine, r.FS, r.Problem, r.Depth}] = r
		}
	}
	var problems []string
	checked := 0
	for _, r := range rows {
		if !r.CAStore || r.Replicas > 1 || r.Depth < 2 {
			continue
		}
		p, ok := plain[key{r.Machine, r.FS, r.Problem, r.Depth}]
		if !ok {
			problems = append(problems, fmt.Sprintf(
				"%s/%s %s depth=%d: castore row has no plain twin", r.Machine, r.FS, r.Problem, r.Depth))
			continue
		}
		checked++
		if r.DeviceMB >= p.DeviceMB {
			problems = append(problems, fmt.Sprintf(
				"%s/%s %s depth=%d: castore device MB %.3f not strictly below plain %.3f",
				r.Machine, r.FS, r.Problem, r.Depth, r.DeviceMB, p.DeviceMB))
		}
	}
	if checked == 0 {
		problems = append(problems, "no castore rows at depth >= 2 to check")
	}
	return problems
}

// checkHintsInvariant asserts the hints sweep's headline claim: the
// autotuned hint vector's total I/O time is never above the hand-picked
// defaults on any row, and strictly below on at least one pvfs row (the
// paper's tuning target). Every row must also still verify. An empty row
// set is a violation — the gate must never pass vacuously.
func checkHintsInvariant(rows []experiments.HintsRow) []string {
	var problems []string
	checked, pvfsWins := 0, 0
	for _, r := range rows {
		checked++
		if !r.Verified {
			problems = append(problems, fmt.Sprintf(
				"%s/%s %s: tuned run failed verification", r.Machine, r.FS, r.Backend))
		}
		if r.TunedIOSec > r.DefaultIOSec {
			problems = append(problems, fmt.Sprintf(
				"%s/%s %s: tuned I/O %.3fs above default %.3fs",
				r.Machine, r.FS, r.Backend, r.TunedIOSec, r.DefaultIOSec))
		}
		if r.FS == "pvfs" && r.TunedIOSec < r.DefaultIOSec {
			pvfsWins++
		}
	}
	if checked == 0 {
		problems = append(problems, "no hints rows to check")
	} else if pvfsWins == 0 {
		problems = append(problems, "no pvfs row where tuned I/O is strictly below the default")
	}
	return problems
}

// checkTenantsInvariant asserts the multi-tenant sweep's headline claim:
// on every contended fleet, fair queueing's worst-job slowdown is no
// worse than FIFO's, and on at least one contended pvfs fleet it is
// strictly better. Every row must verify, every contended case needs
// both policy groups, and an empty row set is a violation — the gate
// must never pass vacuously.
func checkTenantsInvariant(rows []experiments.TenantRow) []string {
	type group struct {
		worst float64
		rows  int
	}
	type caseInfo struct {
		fs        string
		contended bool
		policies  map[string]*group
	}
	var problems []string
	cases := make(map[string]*caseInfo)
	order := []string{}
	for _, r := range rows {
		if !r.Verified {
			problems = append(problems, fmt.Sprintf(
				"%s/%s %s job %s failed verification", r.Case, r.Policy, r.Problem, r.Job))
		}
		ci, ok := cases[r.Case]
		if !ok {
			ci = &caseInfo{fs: r.FS, contended: r.Contended, policies: make(map[string]*group)}
			cases[r.Case] = ci
			order = append(order, r.Case)
		}
		g, ok := ci.policies[r.Policy]
		if !ok {
			g = &group{}
			ci.policies[r.Policy] = g
		}
		g.rows++
		if r.Slowdown > g.worst {
			g.worst = r.Slowdown
		}
	}
	checked, pvfsWins := 0, 0
	for _, name := range order {
		ci := cases[name]
		if !ci.contended {
			continue
		}
		fifo, fair := ci.policies["fifo"], ci.policies["fair"]
		if fifo == nil || fair == nil {
			problems = append(problems, fmt.Sprintf(
				"%s: contended case is missing a policy group (fifo=%v fair=%v)", name, fifo != nil, fair != nil))
			continue
		}
		checked++
		if fair.worst > fifo.worst {
			problems = append(problems, fmt.Sprintf(
				"%s: fair worst slowdown %.6f above fifo's %.6f", name, fair.worst, fifo.worst))
		}
		if ci.fs == "pvfs" && fair.worst < fifo.worst {
			pvfsWins++
		}
	}
	if checked == 0 {
		problems = append(problems, "no contended tenant cases to check")
	} else if pvfsWins == 0 {
		problems = append(problems, "no contended pvfs case where fair queueing strictly improves the worst slowdown")
	}
	return problems
}

// CompareRows compares two row slices of the same comparable struct type
// with exact equality and renders any differences field by field. Virtual
// times survive the JSON round-trip bit-exactly (Go emits the shortest
// representation that parses back to the same float64), so == is the right
// comparison — no tolerance.
func CompareRows[T comparable](section string, base, fresh []T) []string {
	var out []string
	if len(base) != len(fresh) {
		out = append(out, fmt.Sprintf("%s: row count changed: baseline %d, fresh %d",
			section, len(base), len(fresh)))
	}
	n := len(base)
	if len(fresh) < n {
		n = len(fresh)
	}
	for i := 0; i < n; i++ {
		if base[i] == fresh[i] {
			continue
		}
		out = append(out, fmt.Sprintf("%s row %d:%s", section, i, diffFields(base[i], fresh[i])))
	}
	return out
}

// diffFields renders the fields that differ between two structs of the
// same type.
func diffFields[T any](base, fresh T) string {
	bv, fv := reflect.ValueOf(base), reflect.ValueOf(fresh)
	t := bv.Type()
	out := ""
	for i := 0; i < t.NumField(); i++ {
		b, f := bv.Field(i).Interface(), fv.Field(i).Interface()
		if b != f {
			out += fmt.Sprintf("\n  %-14s baseline %v\tfresh %v", t.Field(i).Name, b, f)
		}
	}
	return out
}

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func readJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("%w (generate with: go run ./cmd/benchdiff -update)", err)
	}
	return json.Unmarshal(b, v)
}
