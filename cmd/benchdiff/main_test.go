package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestCompareRowsExactMatchPasses(t *testing.T) {
	rows := []experiments.Row{
		{Figure: "fig8", Problem: "AMR128", Backend: "mpiio", WriteSec: 12.345678901234567, Verified: true},
		{Figure: "fig8", Problem: "AMR128", Backend: "hdf4", WriteSec: 7.000000000000001, Verified: true},
	}
	if drift := CompareRows("t", rows, rows); len(drift) != 0 {
		t.Fatalf("identical rows reported drift: %v", drift)
	}
}

// TestCompareRowsCatchesSyntheticPerturbation is the gate proving itself:
// a 1-ulp-scale perturbation of one virtual time must be reported.
func TestCompareRowsCatchesSyntheticPerturbation(t *testing.T) {
	base := []experiments.Row{
		{Figure: "fig8", Problem: "AMR128", Backend: "mpiio", WriteSec: 12.345678901234567},
	}
	fresh := []experiments.Row{base[0]}
	fresh[0].WriteSec += 1e-12
	drift := CompareRows("codecs", base, fresh)
	if len(drift) != 1 {
		t.Fatalf("drift entries = %d, want 1", len(drift))
	}
	if !strings.Contains(drift[0], "WriteSec") || !strings.Contains(drift[0], "codecs row 0") {
		t.Fatalf("drift message not field-attributed:\n%s", drift[0])
	}
}

func TestCompareRowsCatchesRowCountChange(t *testing.T) {
	base := []experiments.Table1Row{{Problem: "AMR64"}, {Problem: "AMR128"}}
	fresh := base[:1]
	drift := CompareRows("table1", base, fresh)
	if len(drift) != 1 || !strings.Contains(drift[0], "row count changed") {
		t.Fatalf("row-count drift not reported: %v", drift)
	}
}

// TestFloatsSurviveJSONRoundTrip pins the property the exact-equality gate
// rests on: encoding/json emits the shortest decimal that parses back to
// the identical float64.
func TestFloatsSurviveJSONRoundTrip(t *testing.T) {
	vals := []float64{12.345678901234567, 1.0 / 3.0, 2.2250738585072014e-308, 0.1 + 0.2}
	for _, v := range vals {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		var back float64
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != v {
			t.Fatalf("%v did not round-trip (got %v)", v, back)
		}
	}
}

func TestBadFlagsRejected(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if code := run([]string{"extra-arg"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code for stray argument = %d, want 2", code)
	}
}
