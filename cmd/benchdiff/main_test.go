package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestCompareRowsExactMatchPasses(t *testing.T) {
	rows := []experiments.Row{
		{Figure: "fig8", Problem: "AMR128", Backend: "mpiio", WriteSec: 12.345678901234567, Verified: true},
		{Figure: "fig8", Problem: "AMR128", Backend: "hdf4", WriteSec: 7.000000000000001, Verified: true},
	}
	if drift := CompareRows("t", rows, rows); len(drift) != 0 {
		t.Fatalf("identical rows reported drift: %v", drift)
	}
}

// TestCompareRowsCatchesSyntheticPerturbation is the gate proving itself:
// a 1-ulp-scale perturbation of one virtual time must be reported.
func TestCompareRowsCatchesSyntheticPerturbation(t *testing.T) {
	base := []experiments.Row{
		{Figure: "fig8", Problem: "AMR128", Backend: "mpiio", WriteSec: 12.345678901234567},
	}
	fresh := []experiments.Row{base[0]}
	fresh[0].WriteSec += 1e-12
	drift := CompareRows("codecs", base, fresh)
	if len(drift) != 1 {
		t.Fatalf("drift entries = %d, want 1", len(drift))
	}
	if !strings.Contains(drift[0], "WriteSec") || !strings.Contains(drift[0], "codecs row 0") {
		t.Fatalf("drift message not field-attributed:\n%s", drift[0])
	}
}

func TestCompareRowsCatchesRowCountChange(t *testing.T) {
	base := []experiments.Table1Row{{Problem: "AMR64"}, {Problem: "AMR128"}}
	fresh := base[:1]
	drift := CompareRows("table1", base, fresh)
	if len(drift) != 1 || !strings.Contains(drift[0], "row count changed") {
		t.Fatalf("row-count drift not reported: %v", drift)
	}
}

// TestFloatsSurviveJSONRoundTrip pins the property the exact-equality gate
// rests on: encoding/json emits the shortest decimal that parses back to
// the identical float64.
func TestFloatsSurviveJSONRoundTrip(t *testing.T) {
	vals := []float64{12.345678901234567, 1.0 / 3.0, 2.2250738585072014e-308, 0.1 + 0.2}
	for _, v := range vals {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		var back float64
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != v {
			t.Fatalf("%v did not round-trip (got %v)", v, back)
		}
	}
}

// TestCheckDedupInvariant pins the -checkdedup gate's semantics: strict
// device-byte savings at depth >= 2, no vacuous pass, missing twins and
// non-savings both reported.
func TestCheckDedupInvariant(t *testing.T) {
	mk := func(cas bool, depth, reps int, deviceMB float64) experiments.DedupRow {
		return experiments.DedupRow{
			Machine: "chiba", FS: "pvfs", Problem: "AMR64",
			Depth: depth, CAStore: cas, Replicas: reps, DeviceMB: deviceMB,
		}
	}
	if p := checkDedupInvariant([]experiments.DedupRow{mk(false, 2, 0, 100), mk(true, 2, 1, 60)}); len(p) != 0 {
		t.Fatalf("valid rows flagged: %v", p)
	}
	if p := checkDedupInvariant([]experiments.DedupRow{mk(false, 2, 0, 100), mk(true, 2, 1, 100)}); len(p) != 1 {
		t.Fatalf("equal device bytes not flagged: %v", p)
	}
	if p := checkDedupInvariant([]experiments.DedupRow{mk(true, 2, 1, 60)}); len(p) == 0 {
		t.Fatal("castore row without a plain twin not flagged")
	}
	if p := checkDedupInvariant(nil); len(p) == 0 {
		t.Fatal("empty sweep passed vacuously")
	}
	// k>1 and depth 1 rows are exempt: replication legitimately multiplies
	// device bytes, and a single generation has nothing to dedup against.
	exempt := []experiments.DedupRow{
		mk(false, 2, 0, 100), mk(true, 2, 1, 60),
		mk(true, 2, 2, 120), mk(true, 1, 1, 100), mk(false, 1, 0, 100),
	}
	if p := checkDedupInvariant(exempt); len(p) != 0 {
		t.Fatalf("exempt rows flagged: %v", p)
	}
}

// TestCheckTenantsInvariant pins the -checktenants gate's semantics: fair
// never above fifo on contended fleets, a strict pvfs improvement
// somewhere, no vacuous pass, failed verification and missing policy
// groups both reported.
func TestCheckTenantsInvariant(t *testing.T) {
	mk := func(cas, fs, policy, job string, slowdown float64, contended bool) experiments.TenantRow {
		return experiments.TenantRow{
			Case: cas, Machine: "chiba", FS: fs, Policy: policy, Job: job,
			Slowdown: slowdown, Contended: contended, Verified: true,
		}
	}
	good := []experiments.TenantRow{
		mk("twins", "pvfs", "fifo", "a", 1.4, true),
		mk("twins", "pvfs", "fifo", "b", 1.2, true),
		mk("twins", "pvfs", "fair", "a", 1.3, true),
		mk("twins", "pvfs", "fair", "b", 1.25, true),
	}
	if p := checkTenantsInvariant(good); len(p) != 0 {
		t.Fatalf("valid rows flagged: %v", p)
	}
	worse := append([]experiments.TenantRow{}, good...)
	worse[2].Slowdown = 1.5 // fair worst above fifo's 1.4
	// The regression is both a bound violation and the loss of the strict
	// pvfs win, so two problems report.
	if p := checkTenantsInvariant(worse); len(p) != 2 || !strings.Contains(p[0], "above fifo") {
		t.Fatalf("fair-above-fifo not flagged: %v", p)
	}
	tie := append([]experiments.TenantRow{}, good...)
	tie[2].Slowdown = 1.4 // fair == fifo everywhere: bound holds, no strict pvfs win
	if p := checkTenantsInvariant(tie); len(p) != 1 || !strings.Contains(p[0], "strictly improves") {
		t.Fatalf("missing strict pvfs win not flagged: %v", p)
	}
	if p := checkTenantsInvariant(nil); len(p) == 0 {
		t.Fatal("empty sweep passed vacuously")
	}
	uncontended := []experiments.TenantRow{
		mk("scan", "pvfs", "fifo", "a", 1.0, false),
		mk("scan", "pvfs", "fair", "a", 1.0, false),
	}
	if p := checkTenantsInvariant(uncontended); len(p) == 0 {
		t.Fatal("sweep with only uncontended cases passed vacuously")
	}
	halfgroup := []experiments.TenantRow{mk("twins", "pvfs", "fifo", "a", 1.4, true)}
	if p := checkTenantsInvariant(halfgroup); len(p) == 0 {
		t.Fatal("contended case missing its fair group not flagged")
	}
	unverified := append([]experiments.TenantRow{}, good...)
	unverified[1].Verified = false
	if p := checkTenantsInvariant(unverified); len(p) != 1 || !strings.Contains(p[0], "verification") {
		t.Fatalf("failed verification not flagged: %v", p)
	}
	// A gpfs-only sweep bounds but cannot show the pvfs win.
	gpfsOnly := []experiments.TenantRow{
		mk("g", "gpfs", "fifo", "a", 1.4, true),
		mk("g", "gpfs", "fair", "a", 1.3, true),
	}
	if p := checkTenantsInvariant(gpfsOnly); len(p) != 1 || !strings.Contains(p[0], "pvfs") {
		t.Fatalf("missing pvfs case not flagged: %v", p)
	}
}

// TestCheckFlagsFailLoudly pins the gates' failure modes across every
// -check* flag: a missing baseline file and a present-but-empty baseline
// must both exit nonzero with a diagnostic, never pass silently.
func TestCheckFlagsFailLoudly(t *testing.T) {
	cases := []struct {
		name     string
		flag     string
		pathFlag string
		empty    string // JSON with zero matching rows
	}{
		{"dedup", "-checkdedup", "-dedup", `{"Dedup": []}`},
		{"hints", "-checkhints", "-hints", `{"Hints": []}`},
		{"tenants", "-checktenants", "-tenants", `{"Tenants": []}`},
	}
	for _, tc := range cases {
		t.Run(tc.name+"/missing-file", func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			missing := t.TempDir() + "/nope.json"
			code := run([]string{tc.flag, tc.pathFlag, missing}, &stdout, &stderr)
			if code != 1 {
				t.Fatalf("exit code = %d, want 1", code)
			}
			if !strings.Contains(stderr.String(), "benchdiff -update") {
				t.Errorf("missing-file error does not tell how to regenerate: %q", stderr.String())
			}
		})
		t.Run(tc.name+"/zero-rows", func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			path := t.TempDir() + "/empty.json"
			if err := os.WriteFile(path, []byte(tc.empty), 0o644); err != nil {
				t.Fatal(err)
			}
			code := run([]string{tc.flag, tc.pathFlag, path}, &stdout, &stderr)
			if code != 1 {
				t.Fatalf("exit code = %d, want 1 (vacuous pass)", code)
			}
			if !strings.Contains(stdout.String(), "INVARIANT VIOLATED") {
				t.Errorf("zero-row baseline did not report a violation: %q", stdout.String())
			}
		})
	}
}

func TestBadFlagsRejected(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if code := run([]string{"extra-arg"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code for stray argument = %d, want 2", code)
	}
}
