package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestCompareRowsExactMatchPasses(t *testing.T) {
	rows := []experiments.Row{
		{Figure: "fig8", Problem: "AMR128", Backend: "mpiio", WriteSec: 12.345678901234567, Verified: true},
		{Figure: "fig8", Problem: "AMR128", Backend: "hdf4", WriteSec: 7.000000000000001, Verified: true},
	}
	if drift := CompareRows("t", rows, rows); len(drift) != 0 {
		t.Fatalf("identical rows reported drift: %v", drift)
	}
}

// TestCompareRowsCatchesSyntheticPerturbation is the gate proving itself:
// a 1-ulp-scale perturbation of one virtual time must be reported.
func TestCompareRowsCatchesSyntheticPerturbation(t *testing.T) {
	base := []experiments.Row{
		{Figure: "fig8", Problem: "AMR128", Backend: "mpiio", WriteSec: 12.345678901234567},
	}
	fresh := []experiments.Row{base[0]}
	fresh[0].WriteSec += 1e-12
	drift := CompareRows("codecs", base, fresh)
	if len(drift) != 1 {
		t.Fatalf("drift entries = %d, want 1", len(drift))
	}
	if !strings.Contains(drift[0], "WriteSec") || !strings.Contains(drift[0], "codecs row 0") {
		t.Fatalf("drift message not field-attributed:\n%s", drift[0])
	}
}

func TestCompareRowsCatchesRowCountChange(t *testing.T) {
	base := []experiments.Table1Row{{Problem: "AMR64"}, {Problem: "AMR128"}}
	fresh := base[:1]
	drift := CompareRows("table1", base, fresh)
	if len(drift) != 1 || !strings.Contains(drift[0], "row count changed") {
		t.Fatalf("row-count drift not reported: %v", drift)
	}
}

// TestFloatsSurviveJSONRoundTrip pins the property the exact-equality gate
// rests on: encoding/json emits the shortest decimal that parses back to
// the identical float64.
func TestFloatsSurviveJSONRoundTrip(t *testing.T) {
	vals := []float64{12.345678901234567, 1.0 / 3.0, 2.2250738585072014e-308, 0.1 + 0.2}
	for _, v := range vals {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		var back float64
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != v {
			t.Fatalf("%v did not round-trip (got %v)", v, back)
		}
	}
}

// TestCheckDedupInvariant pins the -checkdedup gate's semantics: strict
// device-byte savings at depth >= 2, no vacuous pass, missing twins and
// non-savings both reported.
func TestCheckDedupInvariant(t *testing.T) {
	mk := func(cas bool, depth, reps int, deviceMB float64) experiments.DedupRow {
		return experiments.DedupRow{
			Machine: "chiba", FS: "pvfs", Problem: "AMR64",
			Depth: depth, CAStore: cas, Replicas: reps, DeviceMB: deviceMB,
		}
	}
	if p := checkDedupInvariant([]experiments.DedupRow{mk(false, 2, 0, 100), mk(true, 2, 1, 60)}); len(p) != 0 {
		t.Fatalf("valid rows flagged: %v", p)
	}
	if p := checkDedupInvariant([]experiments.DedupRow{mk(false, 2, 0, 100), mk(true, 2, 1, 100)}); len(p) != 1 {
		t.Fatalf("equal device bytes not flagged: %v", p)
	}
	if p := checkDedupInvariant([]experiments.DedupRow{mk(true, 2, 1, 60)}); len(p) == 0 {
		t.Fatal("castore row without a plain twin not flagged")
	}
	if p := checkDedupInvariant(nil); len(p) == 0 {
		t.Fatal("empty sweep passed vacuously")
	}
	// k>1 and depth 1 rows are exempt: replication legitimately multiplies
	// device bytes, and a single generation has nothing to dedup against.
	exempt := []experiments.DedupRow{
		mk(false, 2, 0, 100), mk(true, 2, 1, 60),
		mk(true, 2, 2, 120), mk(true, 1, 1, 100), mk(false, 1, 0, 100),
	}
	if p := checkDedupInvariant(exempt); len(p) != 0 {
		t.Fatalf("exempt rows flagged: %v", p)
	}
}

func TestBadFlagsRejected(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if code := run([]string{"extra-arg"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code for stray argument = %d, want 2", code)
	}
}
